#include "uarch/pipeline_model.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"
#include "uarch/resource_table.hh"

namespace prism
{

namespace
{

/** Ring of recent stream indices for width/occupancy edges. */
class IndexRing
{
  public:
    explicit IndexRing(std::size_t capacity)
        : buf_(std::max<std::size_t>(capacity, 1),
               std::int64_t{-1}),
          cap_(std::max<std::size_t>(capacity, 1))
    {
    }

    void
    push(std::int64_t idx)
    {
        buf_[head_ % cap_] = idx;
        ++head_;
    }

    /** Index pushed `back` entries ago (1 = most recent); -1 if none. */
    std::int64_t
    nthBack(std::size_t back) const
    {
        if (back == 0 || back > cap_ || back > head_)
            return -1;
        return buf_[(head_ - back) % cap_];
    }

  private:
    std::vector<std::int64_t> buf_;
    std::size_t cap_;
    std::size_t head_ = 0;
};

struct AccelState
{
    explicit AccelState(const AccelParams &p)
        : params(p), issue(p.issueWidth), memPorts(p.memPorts),
          wbBus(p.wbBusWidth)
    {
    }

    AccelParams params;
    ResourceTable issue;
    ResourceTable memPorts;
    ResourceTable wbBus;

    /**
     * Operand-storage occupancy with out-of-order freeing: an op may
     * enter the engine once fewer than `window` older ops are still
     * incomplete, i.e. no earlier than the window-th largest
     * completion time seen so far (min-heap of the largest P's).
     */
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>>
        windowTop;
};

} // namespace

const char *
bindKindName(BindKind k)
{
    switch (k) {
      case BindKind::Frontend: return "frontend";
      case BindKind::DataDep: return "data-dep";
      case BindKind::MemDep: return "mem-dep";
      case BindKind::Transform: return "transform-edge";
      case BindKind::InOrder: return "in-order";
      case BindKind::FuBusy: return "fu/port";
      case BindKind::Window: return "window/rob";
      case BindKind::Issue: return "accel-issue";
      case BindKind::Region: return "region";
      case BindKind::NumKinds: break;
    }
    panic("bad bind kind");
}

double
BindProfile::fraction(BindKind k) const
{
    const std::uint64_t t = total();
    return t ? static_cast<double>(
                   counts[static_cast<std::size_t>(k)]) /
                   static_cast<double>(t)
             : 0.0;
}

std::uint64_t
BindProfile::total() const
{
    std::uint64_t t = 0;
    for (std::uint64_t c : counts)
        t += c;
    return t;
}

PipelineResult
PipelineModel::run(const MStream &stream, bool keep_per_inst) const
{
    const CoreConfig &core = cfg_.core;
    const std::size_t n = stream.size();

    PipelineResult res;
    if (n == 0)
        return res;

    std::vector<Cycle> F(n), D(n), E(n), P(n), C(n);

    // Core structural resources.
    ResourceTable fu_alu(core.numAlu);
    ResourceTable fu_muldiv(core.numMulDiv);
    ResourceTable fu_fp(core.numFp);
    ResourceTable dports(core.dcachePorts);
    auto fu_table = [&](FuClass c) -> ResourceTable & {
        switch (fuPoolOf(c)) {
          case FuPool::MulDiv: return fu_muldiv;
          case FuPool::Fp: return fu_fp;
          case FuPool::MemPort: return dports;
          default: return fu_alu;
        }
    };

    const std::size_t hist_cap =
        std::max<std::size_t>({core.width, core.robSize,
                               core.instWindow, 8}) + 1;
    IndexRing core_hist(hist_cap);

    // Issue-window (scheduler) occupancy with out-of-order entry
    // freeing: an instruction may dispatch once fewer than
    // `instWindow` older instructions are still waiting to issue,
    // i.e. no earlier than the instWindow-th largest issue time seen
    // so far. A min-heap of the largest issue times tracks that
    // threshold.
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>>
        iq_top;

    AccelState cgra(cfg_.cgra);
    AccelState nsdf(cfg_.nsdf);
    AccelState tracep(cfg_.tracep);
    auto accel_of = [&](ExecUnit u) -> AccelState & {
        switch (u) {
          case ExecUnit::Cgra: return cgra;
          case ExecUnit::Nsdf: return nsdf;
          case ExecUnit::Tracep: return tracep;
          default: panic("not an accelerator unit");
        }
    };

    Cycle last_fetch = 0;
    Cycle pending_fetch_min = 0;
    bool fetch_group_broken = false; // prev inst was a taken branch
    Cycle last_core_commit = 0;
    Cycle last_core_execute = 0; // for in-order issue
    Cycle region_max_p = 0;      // max completion over all insts
    Cycle total = 0;

    EventCounts &ev = res.events;

    for (std::size_t i = 0; i < n; ++i) {
        const MInst &mi = stream[i];

        // Gather data-dependence readiness, tracking which edge
        // class is the latest (the critical incoming edge).
        Cycle ready = 0;
        BindKind ready_kind = BindKind::Frontend;
        for (std::int64_t d : mi.dep) {
            if (d >= 0) {
                prism_assert(static_cast<std::size_t>(d) < i,
                             "forward dependence in stream");
                if (P[d] > ready) {
                    ready = P[d];
                    ready_kind = BindKind::DataDep;
                }
            }
        }
        if (mi.memDep >= 0 && P[mi.memDep] > ready) {
            ready = P[mi.memDep];
            ready_kind = BindKind::MemDep;
        }
        for (const ExtraDep &xd : mi.extraDeps) {
            if (xd.idx >= 0) {
                prism_assert(static_cast<std::size_t>(xd.idx) < i,
                             "forward extra dependence");
                if (P[xd.idx] + xd.lat > ready) {
                    ready = P[xd.idx] + xd.lat;
                    ready_kind = BindKind::Transform;
                }
            }
        }
        BindKind bind = BindKind::Frontend;

        const Cycle region_bound = mi.startRegion ? region_max_p : 0;

        if (mi.unit == ExecUnit::Core) {
            // ---- Fetch ----
            Cycle f = std::max({last_fetch, pending_fetch_min,
                                region_bound});
            if (fetch_group_broken)
                f = std::max(f, last_fetch + 1);
            const std::int64_t w_back = core_hist.nthBack(core.width);
            if (w_back >= 0)
                f = std::max(f, F[w_back] + 1);
            F[i] = f;
            last_fetch = f;
            pending_fetch_min = 0;
            fetch_group_broken = mi.takenBranch;

            // ---- Dispatch ----
            Cycle d = f + core.frontendDepth;
            const std::int64_t dw = core_hist.nthBack(core.width);
            if (dw >= 0)
                d = std::max(d, D[dw] + 1);
            bool d_window_bound = false;
            if (!core.inorder) {
                const std::int64_t rb =
                    core_hist.nthBack(core.robSize);
                if (rb >= 0 && C[rb] + 1 > d) {
                    d = C[rb] + 1;
                    d_window_bound = true;
                }
                if (iq_top.size() >= core.instWindow &&
                    iq_top.top() > d) {
                    d = iq_top.top();
                    d_window_bound = true;
                }
            }
            D[i] = d;

            // ---- Execute (issue) ----
            Cycle e = d;
            if (d_window_bound)
                bind = BindKind::Window;
            if (mi.startRegion)
                bind = BindKind::Region;
            if (ready > e) {
                e = ready;
                bind = ready_kind;
            }
            if (core.inorder && last_core_execute > e) {
                e = last_core_execute;
                bind = BindKind::InOrder;
            }
            if (mi.fu != FuClass::None) {
                const Cycle got = fu_table(mi.fu).acquire(e);
                if (got > e)
                    bind = BindKind::FuBusy;
                e = got;
            }
            ++res.binding.counts[static_cast<std::size_t>(bind)];
            E[i] = e;
            last_core_execute = std::max(last_core_execute, e);
            if (!core.inorder) {
                iq_top.push(e);
                if (iq_top.size() > core.instWindow)
                    iq_top.pop();
            }

            // ---- Complete ----
            const Cycle lat = mi.isLoad ? mi.memLat : mi.lat;
            P[i] = e + std::max<Cycle>(lat, 1);

            // ---- Commit ----
            Cycle c = std::max(P[i], last_core_commit);
            const std::int64_t cw = core_hist.nthBack(core.width);
            if (cw >= 0)
                c = std::max(c, C[cw] + 1);
            C[i] = c;
            last_core_commit = c;

            if (mi.isCondBranch && mi.mispredicted) {
                pending_fetch_min = std::max(
                    pending_fetch_min,
                    P[i] + core.mispredictPenalty);
            }

            core_hist.push(static_cast<std::int64_t>(i));

            // ---- Events ----
            ++ev.coreFetches;
            ++ev.coreDispatches;
            ++ev.coreIssues;
            ++ev.coreCommits;
            const OpInfo &oi = opInfo(mi.op);
            ev.coreRegReads += oi.numSrcs;
            if (oi.writesDst)
                ++ev.coreRegWrites;
            if (mi.fu != FuClass::None) {
                ev.fuOps[static_cast<std::size_t>(ExecUnit::Core)]
                        [fuPoolIndex(mi.fu)] += mi.lanes;
            }
            ++ev.unitInsts[static_cast<std::size_t>(ExecUnit::Core)];
        } else {
            // ---- Accelerator dataflow op ----
            AccelState &acc = accel_of(mi.unit);
            BindKind bind = ready_kind;
            Cycle e = ready;
            if (region_bound > e) {
                e = region_bound;
                bind = BindKind::Region;
            }
            if (acc.windowTop.size() >= acc.params.window &&
                acc.windowTop.top() > e) {
                e = acc.windowTop.top();
                bind = BindKind::Window;
            }
            {
                const Cycle got = acc.issue.acquire(e);
                if (got > e)
                    bind = BindKind::Issue;
                e = got;
            }
            if ((mi.isLoad || mi.isStore) &&
                acc.params.memPorts > 0) {
                const Cycle got = acc.memPorts.acquire(e);
                if (got > e)
                    bind = BindKind::FuBusy;
                e = got;
            }
            ++res.binding
                  .counts[static_cast<std::size_t>(bind)];
            E[i] = e;
            F[i] = D[i] = e;

            const Cycle lat = mi.isLoad ? mi.memLat : mi.lat;
            Cycle p = e + std::max<Cycle>(lat, 1);
            const OpInfo &oi = opInfo(mi.op);
            if (oi.writesDst && acc.params.wbBusWidth > 0) {
                p = acc.wbBus.acquire(p);
                ++ev.accelWbBusXfers;
            }
            P[i] = p;
            C[i] = p;
            acc.windowTop.push(p);
            if (acc.windowTop.size() > acc.params.window)
                acc.windowTop.pop();

            // ---- Events ----
            if (mi.fu != FuClass::None) {
                ev.fuOps[static_cast<std::size_t>(mi.unit)]
                        [fuPoolIndex(mi.fu)] += mi.lanes;
            }
            ++ev.unitInsts[static_cast<std::size_t>(mi.unit)];
            if (mi.op == Opcode::CfuOp)
                ++ev.cfuOps;
            if (mi.op == Opcode::DfSwitch)
                ++ev.dfSwitches;
            if (mi.isStore && mi.unit == ExecUnit::Tracep)
                ++ev.storeBufWrites;
        }

        // Shared event classes.
        switch (mi.op) {
          case Opcode::AccelCfg: ++ev.accelConfigs; break;
          case Opcode::AccelSend:
          case Opcode::AccelRecv: ++ev.accelComms; break;
          default: break;
        }
        if (mi.isLoad) {
            ++ev.loads;
            if (mi.memLat > cfg_.l1HitLatency)
                ++ev.l2Accesses;
            if (mi.memLat > cfg_.l1HitLatency + cfg_.l2HitLatency)
                ++ev.memAccesses;
        }
        if (mi.isStore)
            ++ev.stores;
        if (mi.isCondBranch) {
            ++ev.branches;
            if (mi.mispredicted)
                ++ev.mispredicts;
        }

        region_max_p = std::max(region_max_p, P[i]);
        total = std::max(total, C[i]);
    }

    res.cycles = total;
    if (keep_per_inst) {
        res.completeAt = std::move(P);
        res.commitAt = std::move(C);
    }
    return res;
}

} // namespace prism
