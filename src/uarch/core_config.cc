#include "uarch/core_config.hh"

#include "common/logging.hh"

namespace prism
{

unsigned
CoreConfig::fuCount(FuPool pool) const
{
    switch (pool) {
      case FuPool::Alu: return numAlu;
      case FuPool::MulDiv: return numMulDiv;
      case FuPool::Fp: return numFp;
      case FuPool::MemPort: return dcachePorts;
      case FuPool::None: return 0;
    }
    panic("bad FU pool");
}

namespace
{

CoreConfig
makeCore(const char *name, bool inorder, unsigned width, unsigned rob,
         unsigned window, unsigned ports, unsigned alu, unsigned muldiv,
         unsigned fp, unsigned frontend)
{
    CoreConfig c;
    c.name = name;
    c.inorder = inorder;
    c.width = width;
    c.robSize = rob;
    c.instWindow = window;
    c.dcachePorts = ports;
    c.numAlu = alu;
    c.numMulDiv = muldiv;
    c.numFp = fp;
    // Wider machines need deeper front-ends (more rename/steer
    // stages), which also deepens the mispredict redirect loop.
    c.frontendDepth = frontend;
    c.mispredictPenalty = frontend + 4;
    return c;
}

// Table 4, plus the 1- and 8-wide OOO points used for the paper's
// cross-validation experiment (Section 2.5).
const CoreConfig kIO2 =
    makeCore("IO2", true, 2, 0, 0, 1, 2, 1, 1, 4);
const CoreConfig kOOO1 =
    makeCore("OOO1", false, 1, 32, 16, 1, 1, 1, 1, 4);
const CoreConfig kOOO2 =
    makeCore("OOO2", false, 2, 64, 32, 1, 2, 1, 1, 5);
const CoreConfig kOOO4 =
    makeCore("OOO4", false, 4, 168, 48, 2, 3, 2, 2, 6);
const CoreConfig kOOO6 =
    makeCore("OOO6", false, 6, 192, 52, 3, 4, 2, 3, 7);
const CoreConfig kOOO8 =
    makeCore("OOO8", false, 8, 224, 64, 4, 6, 3, 4, 8);

} // namespace

const CoreConfig &
coreConfig(CoreKind kind)
{
    switch (kind) {
      case CoreKind::IO2: return kIO2;
      case CoreKind::OOO1: return kOOO1;
      case CoreKind::OOO2: return kOOO2;
      case CoreKind::OOO4: return kOOO4;
      case CoreKind::OOO6: return kOOO6;
      case CoreKind::OOO8: return kOOO8;
    }
    panic("bad core kind");
}

CoreParams
coreParams(CoreKind kind)
{
    const CoreConfig &c = coreConfig(kind);
    CoreParams p;
    p.inorder = c.inorder;
    p.width = c.width;
    p.robSize = c.robSize;
    p.instWindow = c.instWindow;
    p.dcachePorts = c.dcachePorts;
    p.numAlu = c.numAlu;
    p.numMulDiv = c.numMulDiv;
    p.numFp = c.numFp;
    p.frontendDepth = c.frontendDepth;
    p.simdLanes = c.simdLanes;
    return p; // cache latencies keep the common defaults
}

std::string
coreParamsName(const CoreParams &p)
{
    // Compact, value-derived, and unambiguous: equal parameters equal
    // names, so rendered search tables are deterministic.
    std::string n = p.inorder ? "io" : "ooo";
    n += std::to_string(p.width);
    n += ".r" + std::to_string(p.robSize);
    n += "q" + std::to_string(p.instWindow);
    n += ".p" + std::to_string(p.dcachePorts);
    n += "a" + std::to_string(p.numAlu);
    n += "m" + std::to_string(p.numMulDiv);
    n += "f" + std::to_string(p.numFp);
    n += ".d" + std::to_string(p.frontendDepth);
    if (p.simdLanes != 4)
        n += "v" + std::to_string(p.simdLanes);
    if (p.l1HitLatency != 4 || p.l2HitLatency != 26) {
        n += ".l" + std::to_string(p.l1HitLatency) + "_" +
             std::to_string(p.l2HitLatency);
    }
    return n;
}

CoreConfig
coreConfigFrom(const CoreParams &p)
{
    CoreConfig c;
    c.name = coreParamsName(p);
    c.inorder = p.inorder;
    c.width = p.width;
    c.robSize = p.robSize;
    c.instWindow = p.instWindow;
    c.dcachePorts = p.dcachePorts;
    c.numAlu = p.numAlu;
    c.numMulDiv = p.numMulDiv;
    c.numFp = p.numFp;
    c.frontendDepth = p.frontendDepth;
    c.mispredictPenalty = p.frontendDepth + 4; // as makeCore does
    c.simdLanes = p.simdLanes;
    return c;
}

CoreKind
coreKindFromName(const std::string &name)
{
    for (CoreKind k : kAllCoreKinds) {
        if (coreConfig(k).name == name)
            return k;
    }
    fatal("unknown core '%s'", name.c_str());
}

AccelParams
dpCgraParams()
{
    AccelParams p;
    p.issueWidth = 8;    // 64 FUs but dataflow-limited issue
    p.window = 64;       // FU fabric capacity
    p.memPorts = 0;      // memory stays on the general core
    p.wbBusWidth = 4;    // wide vector output interface
    p.configCycles = 64; // config cache fill
    return p;
}

AccelParams
nsdfParams()
{
    AccelParams p;
    p.issueWidth = 6;    // distributed dataflow units
    p.window = 128;      // operand storage
    p.memPorts = 2;      // own cache interface
    p.wbBusWidth = 3;    // writeback bus
    p.configCycles = 32;
    return p;
}

AccelParams
tracepParams()
{
    AccelParams p;
    p.issueWidth = 6;
    p.window = 64;       // half of NS-DF's operand storage (paper 3.1)
    p.memPorts = 2;
    p.wbBusWidth = 3;
    p.configCycles = 32;
    return p;
}

} // namespace prism
