#include "uarch/resource_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prism
{

ResourceTable::ResourceTable(unsigned capacity,
                             std::size_t window_cycles)
    : capacity_(capacity), window_(window_cycles),
      mask_(window_cycles - 1), used_(window_cycles, 0)
{
    prism_assert((window_cycles & (window_cycles - 1)) == 0,
                 "window must be a power of two");
}

void
ResourceTable::slideTo(Cycle cycle)
{
    if (cycle < base_ + window_)
        return;
    const Cycle new_base = cycle - window_ / 2;
    // Clear slots that leave the window. If the jump exceeds the
    // window, everything is stale.
    if (new_base - base_ >= window_) {
        std::fill(used_.begin(), used_.end(), 0);
    } else {
        for (Cycle c = base_; c < new_base; ++c)
            used_[c & mask_] = 0;
    }
    base_ = new_base;
}

Cycle
ResourceTable::acquireMany(Cycle earliest, unsigned n)
{
    Cycle last = earliest;
    for (unsigned i = 0; i < n; ++i)
        last = acquire(earliest);
    return last;
}

void
ResourceTable::reset()
{
    std::fill(used_.begin(), used_.end(), 0);
    base_ = 0;
}

} // namespace prism
