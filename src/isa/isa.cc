#include "isa/isa.hh"

#include "common/logging.hh"

namespace prism
{

namespace
{

// Shorthand constructors for the opcode table.
struct Op
{
    static constexpr OpInfo
    alu(std::string_view n, std::uint8_t srcs = 2, std::uint8_t lat = 1)
    {
        OpInfo o;
        o.name = n;
        o.fu = FuClass::IntAlu;
        o.latency = lat;
        o.numSrcs = srcs;
        return o;
    }

    static constexpr OpInfo
    fp(std::string_view n, FuClass fu, std::uint8_t lat,
       std::uint8_t srcs = 2)
    {
        OpInfo o;
        o.name = n;
        o.fu = fu;
        o.latency = lat;
        o.numSrcs = srcs;
        o.isFp = true;
        return o;
    }
};

constexpr std::array<OpInfo, kNumOpcodes>
makeOpTable()
{
    std::array<OpInfo, kNumOpcodes> t{};
    auto set = [&t](Opcode op, OpInfo info) {
        t[static_cast<std::size_t>(op)] = info;
    };

    set(Opcode::Add, Op::alu("add"));
    set(Opcode::Sub, Op::alu("sub"));
    set(Opcode::And, Op::alu("and"));
    set(Opcode::Or, Op::alu("or"));
    set(Opcode::Xor, Op::alu("xor"));
    set(Opcode::Shl, Op::alu("shl"));
    set(Opcode::Shr, Op::alu("shr"));
    set(Opcode::Mov, Op::alu("mov", 1));
    set(Opcode::Movi, Op::alu("movi", 0));
    set(Opcode::CmpEq, Op::alu("cmpeq"));
    set(Opcode::CmpLt, Op::alu("cmplt"));
    set(Opcode::CmpLe, Op::alu("cmple"));
    set(Opcode::Sel, Op::alu("sel", 3));

    {
        OpInfo o = Op::alu("mul", 2, 3);
        o.fu = FuClass::IntMul;
        set(Opcode::Mul, o);
        o = Op::alu("div", 2, 12);
        o.fu = FuClass::IntDiv;
        set(Opcode::Div, o);
        o = Op::alu("rem", 2, 12);
        o.fu = FuClass::IntDiv;
        set(Opcode::Rem, o);
    }

    set(Opcode::Fadd, Op::fp("fadd", FuClass::FpAlu, 3));
    set(Opcode::Fsub, Op::fp("fsub", FuClass::FpAlu, 3));
    set(Opcode::Fmul, Op::fp("fmul", FuClass::FpMul, 3));
    set(Opcode::Fdiv, Op::fp("fdiv", FuClass::FpDiv, 12));
    set(Opcode::Fsqrt, Op::fp("fsqrt", FuClass::FpDiv, 16, 1));
    set(Opcode::Fma, Op::fp("fma", FuClass::FpMul, 4, 3));
    set(Opcode::FcmpLt, Op::fp("fcmplt", FuClass::FpAlu, 2));
    set(Opcode::FcmpEq, Op::fp("fcmpeq", FuClass::FpAlu, 2));
    set(Opcode::CvtIF, Op::fp("cvtif", FuClass::FpAlu, 2, 1));
    set(Opcode::CvtFI, Op::fp("cvtfi", FuClass::FpAlu, 2, 1));

    {
        OpInfo o;
        o.name = "ld";
        o.fu = FuClass::Mem;
        o.latency = 4; // L1 hit; the trace overrides with dynamic latency
        o.numSrcs = 1; // base register
        o.isLoad = true;
        set(Opcode::Ld, o);

        o = OpInfo{};
        o.name = "st";
        o.fu = FuClass::Mem;
        o.latency = 1;
        o.numSrcs = 2; // base, value
        o.writesDst = false;
        o.isStore = true;
        set(Opcode::St, o);
    }

    {
        OpInfo o;
        o.name = "br";
        o.fu = FuClass::Branch;
        o.numSrcs = 1;
        o.writesDst = false;
        o.isBranch = true;
        o.isCondBranch = true;
        set(Opcode::Br, o);

        o = OpInfo{};
        o.name = "jmp";
        o.fu = FuClass::Branch;
        o.numSrcs = 0;
        o.writesDst = false;
        o.isBranch = true;
        set(Opcode::Jmp, o);

        o = OpInfo{};
        o.name = "call";
        o.fu = FuClass::Branch;
        o.numSrcs = 0;
        o.writesDst = false;
        o.isBranch = true;
        o.isCall = true;
        set(Opcode::Call, o);

        o = OpInfo{};
        o.name = "ret";
        o.fu = FuClass::Branch;
        o.numSrcs = 1; // return value (optional)
        o.writesDst = false;
        o.isBranch = true;
        o.isRet = true;
        set(Opcode::Ret, o);
    }

    {
        OpInfo o;
        o.name = "nop";
        o.fu = FuClass::None;
        o.numSrcs = 0;
        o.writesDst = false;
        set(Opcode::Nop, o);
    }

    // ---- Synthetic (transform-only) opcodes ----
    auto synth = [](std::string_view n, FuClass fu, std::uint8_t lat,
                    std::uint8_t srcs, bool vec) {
        OpInfo o;
        o.name = n;
        o.fu = fu;
        o.latency = lat;
        o.numSrcs = srcs;
        o.isSynthetic = true;
        o.isVector = vec;
        return o;
    };

    set(Opcode::Vadd, synth("vadd", FuClass::IntAlu, 1, 2, true));
    set(Opcode::Vsub, synth("vsub", FuClass::IntAlu, 1, 2, true));
    set(Opcode::Vmul, synth("vmul", FuClass::IntMul, 3, 2, true));
    set(Opcode::Vdiv, synth("vdiv", FuClass::IntDiv, 12, 2, true));
    set(Opcode::Vfadd, synth("vfadd", FuClass::FpAlu, 3, 2, true));
    set(Opcode::Vfsub, synth("vfsub", FuClass::FpAlu, 3, 2, true));
    set(Opcode::Vfmul, synth("vfmul", FuClass::FpMul, 3, 2, true));
    set(Opcode::Vfdiv, synth("vfdiv", FuClass::FpDiv, 14, 2, true));
    set(Opcode::Vfma, synth("vfma", FuClass::FpMul, 4, 3, true));
    set(Opcode::Vcmp, synth("vcmp", FuClass::IntAlu, 1, 2, true));
    set(Opcode::Vsel, synth("vsel", FuClass::IntAlu, 1, 3, true));

    {
        OpInfo o = synth("vld", FuClass::Mem, 4, 1, true);
        o.isLoad = true;
        set(Opcode::Vld, o);
        o = synth("vst", FuClass::Mem, 1, 2, true);
        o.isStore = true;
        o.writesDst = false;
        set(Opcode::Vst, o);
    }

    set(Opcode::Vpack, synth("vpack", FuClass::IntAlu, 1, 2, true));
    set(Opcode::Vunpack, synth("vunpack", FuClass::IntAlu, 1, 1, true));
    set(Opcode::Vmask, synth("vmask", FuClass::IntAlu, 1, 3, true));
    set(Opcode::Vmov, synth("vmov", FuClass::IntAlu, 1, 1, true));

    set(Opcode::AccelCfg, synth("accel.cfg", FuClass::None, 1, 0, false));
    set(Opcode::AccelSend, synth("accel.send", FuClass::IntAlu, 1, 1,
                                 false));
    set(Opcode::AccelRecv, synth("accel.recv", FuClass::IntAlu, 1, 1,
                                 false));
    set(Opcode::DfSwitch, synth("df.switch", FuClass::IntAlu, 1, 2,
                                false));
    set(Opcode::CfuOp, synth("cfu.op", FuClass::IntAlu, 1, 3, false));

    return t;
}

} // namespace

const std::array<OpInfo, kNumOpcodes> detail::kOpTable = makeOpTable();

std::string_view
opName(Opcode op)
{
    return opInfo(op).name;
}

Opcode
vectorFormOf(Opcode op)
{
    switch (op) {
      case Opcode::Add: return Opcode::Vadd;
      case Opcode::Sub: return Opcode::Vsub;
      case Opcode::And: return Opcode::Vadd; // logical ops share vadd cost
      case Opcode::Or: return Opcode::Vadd;
      case Opcode::Xor: return Opcode::Vadd;
      case Opcode::Shl: return Opcode::Vadd;
      case Opcode::Shr: return Opcode::Vadd;
      case Opcode::Mov: return Opcode::Vmov;
      case Opcode::Movi: return Opcode::Vmov;
      case Opcode::Mul: return Opcode::Vmul;
      case Opcode::Div: return Opcode::Vdiv;
      case Opcode::Fadd: return Opcode::Vfadd;
      case Opcode::Fsub: return Opcode::Vfsub;
      case Opcode::Fmul: return Opcode::Vfmul;
      case Opcode::Fdiv: return Opcode::Vfdiv;
      case Opcode::Fma: return Opcode::Vfma;
      case Opcode::CmpEq: return Opcode::Vcmp;
      case Opcode::CmpLt: return Opcode::Vcmp;
      case Opcode::CmpLe: return Opcode::Vcmp;
      case Opcode::FcmpLt: return Opcode::Vcmp;
      case Opcode::FcmpEq: return Opcode::Vcmp;
      case Opcode::Sel: return Opcode::Vsel;
      case Opcode::Ld: return Opcode::Vld;
      case Opcode::St: return Opcode::Vst;
      default: return Opcode::Nop;
    }
}

} // namespace prism
