/**
 * @file
 * The Prism guest ISA: a small load/store RISC instruction set rich
 * enough to express the paper's benchmark behaviors (integer/FP
 * compute, memory access with explicit addressing, compare-and-branch
 * control flow, calls), plus the synthetic opcodes that TDG transforms
 * insert (vector ops, masking, accelerator config/communication).
 *
 * This module is the substitute for the paper's x86/Alpha binaries: the
 * functional simulator in src/sim executes these instructions and
 * produces the dynamic traces the TDG is constructed from.
 */

#ifndef PRISM_ISA_ISA_HH
#define PRISM_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace prism
{

/** Functional-unit class an operation executes on. */
enum class FuClass : std::uint8_t
{
    IntAlu,   ///< simple integer / logical / compare
    IntMul,   ///< integer multiply
    IntDiv,   ///< integer divide / remainder
    FpAlu,    ///< FP add/sub/compare/convert
    FpMul,    ///< FP multiply and fused multiply-add
    FpDiv,    ///< FP divide / sqrt
    Mem,      ///< load/store (occupies a data-cache port)
    Branch,   ///< control transfer
    None,     ///< consumes no FU (e.g. nop/config bookkeeping)
};

/** Coarse FU pools matching Table 4's "FUs (ALU, Mul/Div, FP)". */
enum class FuPool : std::uint8_t { Alu, MulDiv, Fp, MemPort, None };

/** Map a fine-grained FU class onto its Table 4 pool. Inline: the
 *  timing hot loop consults this once per instruction. */
inline FuPool
fuPoolOf(FuClass c)
{
    switch (c) {
      case FuClass::IntAlu:
      case FuClass::Branch:
        return FuPool::Alu;
      case FuClass::IntMul:
      case FuClass::IntDiv:
        return FuPool::MulDiv;
      case FuClass::FpAlu:
      case FuClass::FpMul:
      case FuClass::FpDiv:
        return FuPool::Fp;
      case FuClass::Mem:
        return FuPool::MemPort;
      case FuClass::None:
        return FuPool::None;
    }
    return FuPool::None;
}

/**
 * Guest opcodes. The first section is what guest programs may contain;
 * opcodes from Vadd onward are synthetic: they never appear in guest
 * binaries and are only created by TDG transforms.
 */
enum class Opcode : std::uint8_t
{
    // Integer ALU
    Add, Sub, And, Or, Xor, Shl, Shr, Mov, Movi,
    CmpEq, CmpLt, CmpLe, Sel,
    // Integer mul/div
    Mul, Div, Rem,
    // Floating point (registers hold raw bit patterns of doubles)
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fma, FcmpLt, FcmpEq,
    CvtIF, CvtFI,
    // Memory
    Ld, St,
    // Control
    Br, Jmp, Call, Ret,
    Nop,

    // ---- Synthetic opcodes (TDG-transform output only) ----
    Vadd, Vsub, Vmul, Vdiv, Vfadd, Vfsub, Vfmul, Vfdiv, Vfma,
    Vcmp, Vsel,
    Vld, Vst,       ///< contiguous vector memory access
    Vpack, Vunpack, ///< gather/scatter emulation for strided access
    Vmask,          ///< merge along if-converted control paths
    Vmov,           ///< scalar<->vector transfer
    AccelCfg,       ///< accelerator configuration load
    AccelSend,      ///< GPP -> accelerator operand transfer (DP-CGRA)
    AccelRecv,      ///< accelerator -> GPP result transfer (DP-CGRA)
    DfSwitch,       ///< dataflow control "switch" (NS-DF)
    CfuOp,          ///< compound-functional-unit operation (NS-DF/Trace-P)

    NumOpcodes,
};

/** Count of opcodes, usable for static tables. */
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

/** Static properties of an opcode. */
struct OpInfo
{
    std::string_view name;
    FuClass fu = FuClass::IntAlu;
    std::uint8_t latency = 1;   ///< execute->complete latency in cycles
    std::uint8_t numSrcs = 2;   ///< register sources read
    bool writesDst = true;
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;      ///< any control transfer
    bool isCondBranch = false;
    bool isCall = false;
    bool isRet = false;
    bool isFp = false;
    bool isSynthetic = false;   ///< transform-inserted only
    bool isVector = false;
};

namespace detail
{
/** The opcode property table (defined in isa.cc). */
extern const std::array<OpInfo, kNumOpcodes> kOpTable;
} // namespace detail

/** Look up the static properties of an opcode. Inline: the timing
 *  hot loop consults this once per instruction. */
inline const OpInfo &
opInfo(Opcode op)
{
    return detail::kOpTable[static_cast<std::size_t>(op)];
}

/** Short mnemonic, e.g. "fadd". */
std::string_view opName(Opcode op);

/** True if the opcode touches memory. */
inline bool
isMemOp(Opcode op)
{
    const OpInfo &oi = opInfo(op);
    return oi.isLoad || oi.isStore;
}

/** Scalar -> vector opcode mapping for the SIMD transform; Nop if the
 *  opcode has no vector form. */
Opcode vectorFormOf(Opcode op);

} // namespace prism

#endif // PRISM_ISA_ISA_HH
