/**
 * @file
 * Behavior-space report for a workload (the paper's Figure 6 / 13
 * analysis, per loop): which program behaviors each loop exhibits,
 * which BSAs can target it and why the others cannot, and what the
 * oracle ultimately chooses on an OOO2 ExoCore.
 *
 * Usage: workload_affinity [workload-name]
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "tdg/exocore.hh"
#include "trace/trace_stats.hh"
#include "workloads/suite.hh"

using namespace prism;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "cjpeg-1";
    const auto lw = LoadedWorkload::load(findWorkload(name));
    const Tdg &tdg = lw->tdg();

    const TraceStats st = computeStats(tdg.trace());
    std::printf("Workload '%s': %llu dynamic insts, %.1f%% branches "
                "(%.1f%% mispredicted), %.1f cycles avg load-use\n\n",
                name.c_str(),
                static_cast<unsigned long long>(st.numInsts),
                st.branchFraction() * 100, st.mispredictRate() * 100,
                st.avgLoadLatency());

    const BenchmarkModel bm(tdg, CoreKind::OOO2);
    const ExoResult exo = bm.evaluate(kFullBsaMask);

    Table t({"loop", "depth", "dyn insts", "behavior", "SIMD",
             "DP-CGRA", "NS-DF", "Trace-P", "oracle"});
    for (const Loop &loop : tdg.loops().loops()) {
        if (tdg.dynInstsOf(loop.id) == 0)
            continue;

        // Behavior classification (Figure 6 leaves).
        std::string behavior;
        const auto &deps = tdg.depProfile(loop.id);
        const auto &mem = tdg.memProfile(loop.id);
        const auto &paths = tdg.pathProfile(loop.id);
        if (!loop.innermost) {
            behavior = "nest";
        } else if (deps.vectorizableDeps() &&
                   !mem.loopCarriedStoreToLoad) {
            behavior = paths.numStaticPaths <= 2
                           ? "data-parallel, low control"
                           : "data-parallel, some control";
        } else if (paths.loopBackProbability() > 0.8 &&
                   paths.hotPathFraction() > 2.0 / 3.0) {
            behavior = "control critical, consistent";
        } else if (paths.numStaticPaths > 2) {
            behavior = "control critical, varying";
        } else {
            behavior = "recurrence-bound";
        }

        auto cell = [&](BsaKind b) -> std::string {
            const RegionUnitEval &ev =
                bm.unitEval(loop.id, unitIndex(b));
            if (!ev.feasible)
                return "-";
            const double speedup =
                static_cast<double>(
                    bm.unitEval(loop.id, 0).cycles) /
                static_cast<double>(ev.cycles);
            return fmt(speedup, 2) + "x";
        };
        std::string chosen = "GPP";
        for (const ExoChoice &c : exo.choices) {
            if (c.loopId == loop.id)
                chosen = unitName(c.unit);
        }
        t.addRow({std::to_string(loop.id),
                  std::to_string(loop.depth),
                  std::to_string(tdg.dynInstsOf(loop.id)), behavior,
                  cell(BsaKind::Simd), cell(BsaKind::DpCgra),
                  cell(BsaKind::Nsdf), cell(BsaKind::Tracep),
                  chosen});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(per-BSA cells: region speedup over the OOO2 core; "
                "'-' = analysis rejects the loop)\n");

    std::printf("\nOOO2 ExoCore result: %.2fx speedup, %.2fx energy "
                "efficiency; cycle shares ",
                static_cast<double>(bm.baseline().cycles) /
                    static_cast<double>(exo.cycles),
                bm.baseline().energy / exo.energy);
    for (int u = 0; u < kNumUnits; ++u) {
        std::printf("%s %.0f%%%s", unitName(u),
                    exo.unitCycleFraction(u) * 100,
                    u + 1 < kNumUnits ? ", " : "\n");
    }
    return 0;
}
