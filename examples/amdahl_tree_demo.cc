/**
 * @file
 * The paper's Figure 9 worked example: a triple-nested loop where
 * the Amdahl-Tree scheduler labels every node of the loop tree with
 * per-BSA speedup estimates and execution-time shares, then applies
 * Amdahl's law bottom-up to choose between accelerating a whole nest
 * with one BSA or composing different BSAs over the inner loops.
 *
 * The constructed nest mirrors the figure: an outer loop L1 whose
 * body splits time between a middle loop L2 (recurrence-bound: only
 * NS-DF applies) containing a vectorizable hot inner loop L4, and a
 * sibling vectorizable loop L3.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/trace_gen.hh"
#include "tdg/exocore.hh"
#include "tdg/scheduler.hh"
#include "workloads/kernel_util.hh"

using namespace prism;

namespace
{

Program
figure9Nest(SimMemory &mem)
{
    Rng rng(99);
    Arena arena;
    const std::int64_t n = 256;
    const Addr a = arena.alloc(n * 8);
    const Addr b = arena.alloc(n * 8);
    fillF64(mem, a, n, rng);
    fillF64(mem, b, n, rng);

    ProgramBuilder pb;
    auto &f = pb.func("main", 2);
    const RegId a_b = f.arg(0);
    const RegId b_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId s1 = f.reg();
    const RegId s2 = f.reg();
    f.fmoviTo(s1, 0.0);
    f.fmoviTo(s2, 0.0);

    // L1: outer loop (100% of execution).
    countedLoop(f, 0, 60, 1, [&](RegId) {
        // L2: middle loop with a true recurrence (IIR-like) —
        // defeats SIMD, NS-DF can still take the nest.
        countedLoop(f, 0, 12, 1, [&](RegId) {
            const RegId x = f.ld(a_b, 0);
            const RegId y = f.fadd(x, f.fma(s1, f.fmovi(0.6), s2));
            f.movTo(s2, s1);
            f.movTo(s1, y);
            // L4: hot vectorizable inner loop.
            countedLoop(f, 0, n, 1, [&](RegId i) {
                const RegId off = f.mul(i, eight);
                const RegId v = f.ld(f.add(a_b, off), 0);
                const RegId w = f.ld(f.add(b_b, off), 0);
                f.st(f.add(b_b, off), 0,
                     f.fma(v, w, f.fmovi(0.25)));
            });
        });
        // L3: sibling vectorizable loop.
        countedLoop(f, 0, n, 1, [&](RegId i) {
            const RegId off = f.mul(i, eight);
            const RegId v = f.ld(f.add(b_b, off), 0);
            f.st(f.add(a_b, off), 0, f.fmul(v, v));
        });
    });
    f.retVoid();
    return pb.build();
}

} // namespace

int
main()
{
    std::printf("Figure 9: the Amdahl Tree on a triple-nested "
                "loop\n\n");
    SimMemory mem;
    const Program prog = figure9Nest(mem);
    Trace trace(&prog);
    TraceGenConfig tg;
    tg.maxInsts = 600'000;
    generateTrace(prog, mem, {0x10000, 0x10000 + 256 * 8 + 64},
                  trace, tg);
    const Tdg tdg(prog, std::move(trace));
    const BenchmarkModel bm(tdg, CoreKind::OOO2);

    // The tree, with per-node execution share and BSA estimates.
    const Cycle total = bm.baseline().cycles;
    Table t({"loop", "depth", "% of exec", "SIMD est", "DP-CGRA est",
             "NS-DF est", "Trace-P est"});
    for (const Loop &loop : tdg.loops().loops()) {
        std::vector<std::string> row{
            "L" + std::to_string(loop.id),
            std::to_string(loop.depth),
            fmtPct(static_cast<double>(bm.gppLoopCycles(loop.id)) /
                       static_cast<double>(total),
                   0)};
        for (BsaKind b : kAllBsas) {
            const double est =
                amdahlSpeedupEstimate(bm, tdg, loop.id, b);
            row.push_back(est > 0 ? fmtX(est) : "-");
        }
        t.addRow(row);
    }
    std::printf("%s", t.render().c_str());

    // Bottom-up traversal result.
    const ExoResult choice =
        bm.evaluate(kFullBsaMask, SchedulerKind::AmdahlTree);
    std::printf("\nAmdahl-Tree final choice:\n");
    for (const ExoChoice &c : choice.choices) {
        std::printf("  L%d -> %s\n", c.loopId, unitName(c.unit));
    }
    const ExoResult oracle = bm.evaluate(kFullBsaMask);
    std::printf("\nAmdahl schedule: %.2fx speedup, %.2fx energy eff "
                "(oracle: %.2fx, %.2fx)\n",
                static_cast<double>(total) /
                    static_cast<double>(choice.cycles),
                bm.baseline().energy / choice.energy,
                static_cast<double>(total) /
                    static_cast<double>(oracle.cycles),
                bm.baseline().energy / oracle.energy);
    return 0;
}
