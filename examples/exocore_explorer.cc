/**
 * @file
 * ExoCore design-space explorer for one workload.
 *
 * Usage: exocore_explorer [workload-name]
 *
 * Evaluates all 64 (core x BSA-subset) design points for the chosen
 * workload, prints the table, and extracts the Pareto frontier over
 * (performance, energy) — a per-workload version of the paper's
 * Figures 3 and 12.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "energy/area_model.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

using namespace prism;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "mm";
    std::printf("Exploring ExoCore design space for '%s'...\n\n",
                name.c_str());
    const auto lw = LoadedWorkload::load(findWorkload(name));

    struct Point
    {
        std::string name;
        double perf;    // vs IO2 core
        double energy;  // vs IO2 core
        double area;    // mm^2
        bool pareto = false;
    };
    std::vector<Point> points;

    // Reference: the IO2 core alone.
    const BenchmarkModel io2(lw->tdg(), CoreKind::IO2);
    const double ref_cycles =
        static_cast<double>(io2.baseline().cycles);
    const double ref_energy = io2.baseline().energy;

    for (CoreKind core : kTable4Cores) {
        const BenchmarkModel bm(lw->tdg(), core);
        for (unsigned mask = 0; mask < 16; ++mask) {
            const ExoResult res = bm.evaluate(mask);
            Point p;
            p.name = coreConfig(core).name;
            if (mask) {
                p.name += "-";
                for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
                    if (mask & (1u << i))
                        p.name += bsaLetter(kAllBsas[i]);
                }
            }
            p.perf = ref_cycles / static_cast<double>(res.cycles);
            p.energy = res.energy / ref_energy;
            p.area = exoCoreArea(core, mask);
            points.push_back(p);
        }
    }

    // Pareto frontier: no other point is faster AND lower-energy.
    for (Point &p : points) {
        p.pareto = true;
        for (const Point &q : points) {
            if (q.perf > p.perf && q.energy < p.energy) {
                p.pareto = false;
                break;
            }
        }
    }

    std::sort(points.begin(), points.end(),
              [](const Point &a, const Point &b) {
                  return a.perf > b.perf;
              });
    Table t({"design", "rel. perf", "rel. energy", "area mm^2",
             "frontier"});
    for (const Point &p : points) {
        t.addRow({p.name, fmt(p.perf, 2), fmt(p.energy, 2),
                  fmt(p.area, 1), p.pareto ? "*" : ""});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(*) = on the performance/energy Pareto frontier\n");

    int frontier_exo = 0;
    int frontier_bare = 0;
    for (const Point &p : points) {
        if (!p.pareto)
            continue;
        if (p.name.find('-') != std::string::npos)
            ++frontier_exo;
        else
            ++frontier_bare;
    }
    std::printf("\nFrontier composition: %d ExoCore designs, %d bare "
                "cores — BSAs %s the frontier for this workload.\n",
                frontier_exo, frontier_bare,
                frontier_exo > frontier_bare ? "dominate"
                                             : "do not dominate");
    return 0;
}
