/**
 * @file
 * Modeling a *new* BSA with the TDG framework — the Appendix A
 * recipe end-to-end.
 *
 * We define a toy "reduction engine" BSA: a tree of adders that
 * accelerates reduction loops by replacing the serial accumulator
 * chain with a log-depth combining tree fed by wide loads. The model
 * follows the three Appendix A steps:
 *
 *   1. Analysis  — reuse the induction/reduction profile to find
 *                  legal loops (a reduction, unit-stride input, no
 *                  other recurrence).
 *   2. Transform — rewrite each group of 8 iterations into vector
 *                  loads + a 3-level CfuOp adder tree on the NS-DF
 *                  engine (dataflow issue, no fetch).
 *   3. Schedule  — compare per-region energy-delay against the
 *                  general core, like the oracle scheduler.
 *
 * Also validates the new model against the discrete-event reference
 * simulator, as Appendix A recommends for new BSAs.
 */

#include <cstdio>

#include "energy/energy_model.hh"
#include "tdg/analyzer.hh"
#include "tdg/constructor.hh"
#include "tdg/transform.hh"
#include "tdg/reference/ref_models.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

using namespace prism;

namespace
{

/** Step 1: analysis — is this loop a clean reduction? */
bool
canTarget(const Tdg &tdg, const TdgAnalyzer &an, std::int32_t loop_id)
{
    const Loop &loop = tdg.loops().loop(loop_id);
    if (!loop.innermost || loop.containsCall)
        return false;
    const LoopDepProfile &deps = tdg.depProfile(loop_id);
    if (deps.reductions.size() != 1 || deps.otherRecurrence)
        return false;
    // All loads unit-stride (the wide input feed).
    for (const MemAccessPattern &a :
         tdg.memProfile(loop_id).accesses) {
        if (a.isLoad && !a.contiguous())
            return false;
    }
    return an.simd(loop_id).legal; // borrow SIMD's legality checks
}

/** Step 2: transform — rewrite occurrences into the engine form. */
MStream
transformLoop(const Tdg &tdg, std::int32_t loop_id,
              const std::vector<const LoopOccurrence *> &occs)
{
    const Trace &trace = tdg.trace();
    const Loop &loop = tdg.loops().loop(loop_id);
    const Program &prog = tdg.program();
    constexpr unsigned kGroup = 8;

    MStream out;
    for (const LoopOccurrence *occ : occs) {
        const std::size_t start = out.size();
        const auto &its = occ->iterStarts;
        std::int64_t acc_dep = -1; // cross-group accumulator chain

        std::size_t g = 0;
        while (g + kGroup <= its.size()) {
            const DynId gb = its[g];
            const DynId ge = (g + kGroup < its.size())
                                 ? its[g + kGroup]
                                 : occ->end;
            // Two wide loads feed the tree (max latency of group).
            std::uint16_t lat = 4;
            for (DynId i = gb; i < ge; ++i)
                lat = std::max(lat, trace[i].memLat);
            std::vector<std::int64_t> level;
            for (int k = 0; k < 2; ++k) {
                MInst vld;
                vld.op = Opcode::Vld;
                vld.unit = ExecUnit::Nsdf;
                vld.fu = FuClass::Mem;
                vld.isLoad = true;
                vld.memLat = lat;
                vld.lanes = 4;
                level.push_back(
                    static_cast<std::int64_t>(out.size()));
                out.push_back(std::move(vld));
            }
            // 3-level combining tree of compound adders.
            for (int lvl = 0; lvl < 3; ++lvl) {
                MInst add;
                add.op = Opcode::CfuOp;
                add.unit = ExecUnit::Nsdf;
                add.fu = FuClass::FpAlu;
                add.lat = 3;
                add.dep[0] = level[0];
                if (level.size() > 1)
                    add.dep[1] = level[1];
                if (lvl == 2 && acc_dep >= 0)
                    add.dep[2] = acc_dep; // running total
                level = {static_cast<std::int64_t>(out.size())};
                out.push_back(std::move(add));
            }
            acc_dep = level[0];
            g += kGroup;
        }
        if (g < its.size()) {
            // Residual iterations on the core, unmodified.
            xform::DynToIdx dyn_to_idx;
            xform::appendCoreInsts(trace, its[g], occ->end, out,
                                   dyn_to_idx);
        }
        if (out.size() > start)
            out[start].startRegion = true;
        (void)loop;
        (void)prog;
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("Modeling a custom 'reduction tree' BSA with the "
                "TDG framework\n\n");
    const auto lw = LoadedWorkload::load(findWorkload("mm"));
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer an(tdg);

    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    const CycleCoreSim refsim(cfg);
    const EnergyModel em(cfg.core, 1);

    for (const Loop &loop : tdg.loops().loops()) {
        if (!canTarget(tdg, an, loop.id))
            continue;
        const auto occs = tdg.occurrencesOf(loop.id);

        // Baseline region timing.
        std::vector<std::pair<DynId, DynId>> ranges;
        for (const LoopOccurrence *occ : occs)
            ranges.emplace_back(occ->begin, occ->end);
        std::vector<std::size_t> bounds;
        const MStream base =
            buildCoreStreamRanges(tdg.trace(), ranges, bounds);
        const PipelineResult base_res = model.run(base);
        const double base_energy =
            em.energy(base_res.events, base_res.cycles);

        // Step 2+3: transform and evaluate.
        const MStream accel = transformLoop(tdg, loop.id, occs);
        const auto errs = checkStream(accel);
        if (!errs.empty()) {
            std::printf("transform invalid: %s\n",
                        errs.front().c_str());
            return 1;
        }
        const PipelineResult acc_res = model.run(accel);
        const double acc_energy = em.energy(
            acc_res.events, acc_res.cycles, acc_res.cycles / 2);

        const double speedup =
            static_cast<double>(base_res.cycles) /
            static_cast<double>(acc_res.cycles);
        const double eff = base_energy / acc_energy;
        std::printf("loop %d: %8llu -> %8llu cycles  (%.2fx speedup, "
                    "%.2fx energy efficiency)",
                    loop.id,
                    static_cast<unsigned long long>(base_res.cycles),
                    static_cast<unsigned long long>(acc_res.cycles),
                    speedup, eff);
        const bool worthwhile =
            static_cast<double>(acc_res.cycles) * acc_energy <
            static_cast<double>(base_res.cycles) * base_energy;
        std::printf("  -> scheduler would %s\n",
                    worthwhile ? "offload" : "stay on the core");

        // Appendix A: validate the new model against the
        // discrete-event reference.
        const Cycle ref = refsim.run(accel);
        std::printf("  validation vs discrete-event sim: %.1f%% "
                    "timing error\n",
                    100.0 * std::abs(static_cast<double>(
                                         acc_res.cycles) /
                                         static_cast<double>(ref) -
                                     1.0));
    }
    return 0;
}
