/**
 * @file
 * prism_cli — command-line inspector for the Prism library, the tool
 * a downstream user reaches for first:
 *
 *   prism_cli list                      all registered workloads
 *   prism_cli disasm  <workload>        guest-program disassembly
 *   prism_cli stats   <workload>        trace + memory statistics
 *   prism_cli loops   <workload>        loop forest with profiles
 *   prism_cli plans   <workload>        per-loop BSA analysis verdicts
 *   prism_cli eval    <workload> <core> [SDNT]
 *                                       one ExoCore design point
 *   prism_cli record  <workload> <file> save the trace to disk
 *   prism_cli replay  <workload> <file> evaluate from a saved trace
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "tdg/constructor.hh"
#include "tdg/exocore.hh"
#include "trace/serialize.hh"
#include "trace/trace_stats.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/suite.hh"

using namespace prism;

namespace
{

int
cmdList()
{
    Table t({"name", "suite", "class", "max insts"});
    for (const WorkloadSpec &w : allWorkloads()) {
        t.addRow({w.name, w.suite, suiteClassName(w.cls),
                  std::to_string(w.maxInsts)});
    }
    t.addSeparator();
    for (const WorkloadSpec &w : microbenchmarks()) {
        t.addRow({w.name, w.suite, suiteClassName(w.cls),
                  std::to_string(w.maxInsts)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdDisasm(const std::string &name)
{
    const auto lw = LoadedWorkload::load(findWorkload(name), 1000);
    std::printf("%s", lw->program().disassemble().c_str());
    return 0;
}

int
cmdStats(const std::string &name)
{
    const auto lw = LoadedWorkload::load(findWorkload(name));
    const TraceStats st = computeStats(lw->tdg().trace());
    std::printf("%s\n", st.toString().c_str());
    std::printf("L1D miss rate %.1f%%, L2 miss rate %.1f%%\n",
                lw->genResult().l1dMissRate * 100,
                lw->genResult().l2MissRate * 100);
    std::printf("branch fraction %.1f%%, mispredict rate %.1f%%\n",
                st.branchFraction() * 100, st.mispredictRate() * 100);
    // Top opcodes.
    Table t({"opcode", "count", "share"});
    for (int rank = 0; rank < 8; ++rank) {
        std::size_t best = 0;
        std::uint64_t best_count = 0;
        static std::array<bool, kNumOpcodes> used{};
        if (rank == 0)
            used.fill(false);
        for (std::size_t i = 0; i < kNumOpcodes; ++i) {
            if (!used[i] && st.opCounts[i] > best_count) {
                best = i;
                best_count = st.opCounts[i];
            }
        }
        if (best_count == 0)
            break;
        used[best] = true;
        t.addRow({std::string(opName(static_cast<Opcode>(best))),
                  std::to_string(best_count),
                  fmtPct(static_cast<double>(best_count) /
                             static_cast<double>(st.numInsts),
                         1)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdLoops(const std::string &name)
{
    const auto lw = LoadedWorkload::load(findWorkload(name));
    const Tdg &tdg = lw->tdg();
    Table t({"loop", "func", "depth", "static", "dyn insts",
             "avg trip", "paths", "loop-back", "hot path"});
    for (const Loop &loop : tdg.loops().loops()) {
        const PathProfile &pp = tdg.pathProfile(loop.id);
        const auto occs = tdg.occurrencesOf(loop.id);
        std::uint64_t iters = 0;
        for (const LoopOccurrence *occ : occs)
            iters += occ->numIters();
        t.addRow({std::to_string(loop.id),
                  tdg.program().function(loop.func).name,
                  std::to_string(loop.depth),
                  std::to_string(loop.numStaticInstrs),
                  std::to_string(tdg.dynInstsOf(loop.id)),
                  occs.empty() ? "-"
                               : fmt(static_cast<double>(iters) /
                                         static_cast<double>(
                                             occs.size()),
                                     1),
                  std::to_string(pp.numStaticPaths),
                  fmtPct(pp.loopBackProbability(), 0),
                  fmtPct(pp.hotPathFraction(), 0)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdPlans(const std::string &name)
{
    const auto lw = LoadedWorkload::load(findWorkload(name));
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer an(tdg);
    Table t({"loop", "SIMD", "DP-CGRA", "NS-DF", "Trace-P"});
    for (const Loop &loop : tdg.loops().loops()) {
        auto verdict = [&](BsaKind b) -> std::string {
            if (an.usable(b, loop.id))
                return "yes";
            switch (b) {
              case BsaKind::Simd: return an.simd(loop.id).reason;
              case BsaKind::DpCgra: return an.cgra(loop.id).reason;
              case BsaKind::Nsdf: return an.nsdf(loop.id).reason;
              case BsaKind::Tracep:
                return an.tracep(loop.id).reason;
            }
            return "?";
        };
        t.addRow({std::to_string(loop.id), verdict(BsaKind::Simd),
                  verdict(BsaKind::DpCgra), verdict(BsaKind::Nsdf),
                  verdict(BsaKind::Tracep)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdCritpath(const std::string &name, const std::string &core_name)
{
    const auto lw = LoadedWorkload::load(findWorkload(name));
    PipelineConfig cfg;
    cfg.core = coreConfig(coreKindFromName(core_name));
    const MStream stream = buildCoreStream(lw->tdg().trace());
    const PipelineResult res = PipelineModel(cfg).run(stream);
    std::printf("%s on %s: %llu cycles (IPC %.2f)\n", name.c_str(),
                cfg.core.name.c_str(),
                static_cast<unsigned long long>(res.cycles),
                res.ipc(stream.size()));
    std::printf("issue-time binding (which µDG edge class was "
                "critical per instruction):\n");
    Table t({"constraint", "insts", "share"});
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(BindKind::NumKinds); ++k) {
        const auto kind = static_cast<BindKind>(k);
        if (res.binding.counts[k] == 0)
            continue;
        t.addRow({bindKindName(kind),
                  std::to_string(res.binding.counts[k]),
                  fmtPct(res.binding.fraction(kind), 1)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

unsigned
parseMask(const char *letters)
{
    unsigned mask = 0;
    for (const char *p = letters; *p; ++p) {
        bool found = false;
        for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
            if (bsaLetter(kAllBsas[i]) == std::toupper(*p)) {
                mask |= 1u << i;
                found = true;
            }
        }
        if (!found)
            fatal("unknown BSA letter '%c' (use S/D/N/T)", *p);
    }
    return mask;
}

int
cmdEval(const std::string &name, const std::string &core_name,
        const char *letters)
{
    const auto lw = LoadedWorkload::load(findWorkload(name));
    const CoreKind core = coreKindFromName(core_name);
    const unsigned mask = letters ? parseMask(letters) : kFullBsaMask;
    const BenchmarkModel bm(lw->tdg(), core);
    const ExoResult res = bm.evaluate(mask);
    const ExoResult &base = bm.baseline();
    std::printf("%s on %s with mask 0x%X:\n", name.c_str(),
                coreConfig(core).name.c_str(), mask);
    std::printf("  baseline : %llu cycles, %.2f uJ\n",
                static_cast<unsigned long long>(base.cycles),
                base.energy / 1e6);
    std::printf("  exocore  : %llu cycles, %.2f uJ  (%.2fx speedup, "
                "%.2fx energy efficiency)\n",
                static_cast<unsigned long long>(res.cycles),
                res.energy / 1e6,
                static_cast<double>(base.cycles) /
                    static_cast<double>(res.cycles),
                base.energy / res.energy);
    for (const ExoChoice &c : res.choices)
        std::printf("  loop %d -> %s\n", c.loopId, unitName(c.unit));
    return 0;
}

int
cmdRecord(const std::string &name, const std::string &path)
{
    const auto lw = LoadedWorkload::load(findWorkload(name));
    saveTrace(lw->tdg().trace(), path);
    std::printf("recorded %zu dynamic instructions to %s\n",
                lw->tdg().trace().size(), path.c_str());
    return 0;
}

int
cmdReplay(const std::string &name, const std::string &path)
{
    // Rebuild the program (cheap), then reuse the recorded trace.
    const WorkloadSpec &spec = findWorkload(name);
    ProgramBuilder pb;
    SimMemory mem;
    std::vector<std::int64_t> args;
    spec.build(pb, mem, args);
    const Program prog = pb.build();
    if (!traceFileMatches(prog, path))
        fatal("'%s' does not match workload '%s'", path.c_str(),
              name.c_str());
    Trace trace = loadTrace(prog, path);
    std::printf("replaying %zu instructions from %s\n", trace.size(),
                path.c_str());
    const Tdg tdg(prog, std::move(trace));
    const BenchmarkModel bm(tdg, CoreKind::OOO2);
    const ExoResult res = bm.evaluate(kFullBsaMask);
    std::printf("OOO2 full ExoCore: %.2fx speedup, %.2fx energy "
                "efficiency\n",
                static_cast<double>(bm.baseline().cycles) /
                    static_cast<double>(res.cycles),
                bm.baseline().energy / res.energy);
    return 0;
}

void
usage()
{
    std::printf(
        "usage:\n"
        "  prism_cli list\n"
        "  prism_cli disasm|stats|loops|plans <workload>\n"
        "  prism_cli critpath <workload> [core]\n"
        "  prism_cli eval <workload> <IO2|OOO2|OOO4|OOO6> [SDNT]\n"
        "  prism_cli record|replay <workload> <trace-file>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (argc < 3) {
        usage();
        return 1;
    }
    const std::string workload = argv[2];
    if (cmd == "disasm")
        return cmdDisasm(workload);
    if (cmd == "stats")
        return cmdStats(workload);
    if (cmd == "loops")
        return cmdLoops(workload);
    if (cmd == "plans")
        return cmdPlans(workload);
    if (cmd == "critpath")
        return cmdCritpath(workload,
                           argc >= 4 ? argv[3] : "OOO2");
    if (cmd == "eval" && argc >= 4)
        return cmdEval(workload, argv[3], argc >= 5 ? argv[4] : nullptr);
    if (cmd == "record" && argc >= 4)
        return cmdRecord(workload, argv[3]);
    if (cmd == "replay" && argc >= 4)
        return cmdReplay(workload, argv[3]);
    usage();
    return 1;
}
