/**
 * @file
 * Quickstart: the paper's Figure 4 walked end-to-end.
 *
 * 1. Build a small guest program (a multiply-accumulate loop like the
 *    paper's running example).
 * 2. Execute it on the functional simulator to record a trace with
 *    embedded microarchitectural events.
 * 3. Construct the TDG and time the untransformed µDG on a dual-issue
 *    OOO core.
 * 4. Apply the fused-multiply-add transform (Figure 4(c)/(d)) and
 *    time the transformed graph.
 * 5. Load a real workload ("conv") and evaluate a full OOO2 ExoCore.
 */

#include <cstdio>

#include "energy/energy_model.hh"
#include "prog/builder.hh"
#include "sim/trace_gen.hh"
#include "tdg/bsa/bsa.hh"
#include "tdg/constructor.hh"
#include "tdg/exocore.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

using namespace prism;

int
main()
{
    // ---- 1. A small guest program: out[i] = a[i]*b[i] + out[i] ----
    Rng rng(7);
    Arena arena;
    const std::int64_t n = 20000;
    SimMemory mem;
    const Addr a = arena.alloc(n * 8);
    const Addr b = arena.alloc(n * 8);
    const Addr out = arena.alloc(n * 8);
    fillF64(mem, a, n, rng);
    fillF64(mem, b, n, rng);

    ProgramBuilder pb;
    auto &f = pb.func("main", 3);
    const RegId a_b = f.arg(0);
    const RegId b_b = f.arg(1);
    const RegId o_b = f.arg(2);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId x = f.ld(f.add(a_b, off), 0);
        const RegId y = f.ld(f.add(b_b, off), 0);
        const RegId o = f.add(o_b, off);
        const RegId acc = f.ld(o, 0);
        const RegId prod = f.fmul(x, y);             // fusable
        const RegId sum = f.fadd(prod, acc);         // ... with this
        f.st(o, 0, sum);
    });
    f.retVoid();
    const Program prog = pb.build();
    std::printf("Guest program:\n%s\n", prog.disassemble().c_str());

    // ---- 2. Trace generation (gem5's role in Figure 2) ----
    Trace trace(&prog);
    const TraceGenResult gen = generateTrace(
        prog, mem,
        {static_cast<std::int64_t>(a), static_cast<std::int64_t>(b),
         static_cast<std::int64_t>(out)},
        trace);
    std::printf("trace: %zu dynamic instructions, L1D miss %.1f%%\n",
                trace.size(), gen.l1dMissRate * 100);

    // ---- 3. TDG + baseline timing ----
    Tdg tdg(prog, std::move(trace));
    const PipelineConfig cfg{.core = coreConfig(CoreKind::OOO2)};
    const PipelineModel model(cfg);
    const MStream base_stream = buildCoreStream(tdg.trace());
    const PipelineResult base = model.run(base_stream);
    std::printf("OOO2 baseline: %llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(base.cycles),
                base.ipc(base_stream.size()));

    // ---- 4. The fma transform of Figure 4 ----
    FmaTransform fma(tdg);
    const MStream fused = fma.transform();
    const PipelineResult accel = model.run(fused);
    const EnergyModel em(cfg.core);
    const double base_energy = em.energy(base.events, base.cycles);
    const double fused_energy =
        em.energy(accel.events, accel.cycles);
    std::printf("fma-specialized: %llu cycles, %zu static pair fused "
                "(%zu dynamic adds elided)\n"
                "  speedup %.2fx, energy %.2fx -- fma trades a "
                "longer accumulate chain for fewer instructions\n",
                static_cast<unsigned long long>(accel.cycles),
                fma.plannedPairs(),
                base_stream.size() - fused.size(),
                static_cast<double>(base.cycles) /
                    static_cast<double>(accel.cycles),
                base_energy / fused_energy);

    // ---- 5. A full ExoCore on a real workload ----
    std::printf("\nEvaluating workload 'conv' on an OOO2 ExoCore "
                "with all four BSAs...\n");
    const auto lw = LoadedWorkload::load(findWorkload("conv"));
    const BenchmarkModel bm(lw->tdg(), CoreKind::OOO2);
    const ExoResult exo = bm.evaluate(kFullBsaMask);
    const ExoResult &gpp = bm.baseline();
    std::printf("  OOO2 alone   : %llu cycles, %.1f uJ\n",
                static_cast<unsigned long long>(gpp.cycles),
                gpp.energy / 1e6);
    std::printf("  OOO2 ExoCore : %llu cycles, %.1f uJ "
                "(%.2fx speedup, %.2fx energy efficiency)\n",
                static_cast<unsigned long long>(exo.cycles),
                exo.energy / 1e6,
                static_cast<double>(gpp.cycles) /
                    static_cast<double>(exo.cycles),
                gpp.energy / exo.energy);
    for (int u = 0; u < kNumUnits; ++u) {
        std::printf("    %-8s %5.1f%% of cycles\n", unitName(u),
                    exo.unitCycleFraction(u) * 100);
    }
    return 0;
}
