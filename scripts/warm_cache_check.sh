#!/usr/bin/env bash
# Warm-cache correctness + speedup check (registered as the ctest
# `warm_cache_check` under -L perf-smoke).
#
# Runs the fig12 design-space sweep twice against a fresh artifact
# cache directory: the first (cold) run records traces, TDG profiles
# and model tables; the second (warm) run must load all of them back.
# The check fails if
#   - either run exits non-zero,
#   - the rendered Figure 12 tables differ byte-for-byte, or
#   - the warm run is not at least 3x faster end-to-end than the cold
#     run (skipped when PRISM_SKIP_PERF_CHECK is set: sanitized or
#     heavily loaded builds time out of the speedup guarantee without
#     saying anything about correctness).
#
# Usage: scripts/warm_cache_check.sh <path-to-bench_fig12_design_space>
#                                    [--max-insts=N]

set -euo pipefail

bench="${1:?usage: warm_cache_check.sh <bench_fig12_design_space> [--max-insts=N]}"
max_insts="${2:---max-insts=200000}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/prism_warm_check.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT
cache="$workdir/cache"

# Everything between the "Figure 12 table" banner and the next banner
# is the rendered table the two runs must agree on.
extract_table() {
    awk '/^==== Figure 12 table ====/{on=1; next}
         on && /^==== /{exit}
         on' "$1"
}

now_ms() { date +%s%3N; }

echo "== cold run (empty cache: $cache) =="
t0=$(now_ms)
"$bench" --cache-dir="$cache" "$max_insts" --threads=1 \
    > "$workdir/cold.out"
t1=$(now_ms)
cold_ms=$((t1 - t0))

echo "== warm run (same cache) =="
t0=$(now_ms)
"$bench" --cache-dir="$cache" "$max_insts" --threads=1 \
    > "$workdir/warm.out"
t1=$(now_ms)
warm_ms=$((t1 - t0))

extract_table "$workdir/cold.out" > "$workdir/cold.table"
extract_table "$workdir/warm.out" > "$workdir/warm.table"

if [[ ! -s "$workdir/cold.table" ]]; then
    echo "warm_cache_check: FAILED — no Figure 12 table in cold output" >&2
    exit 1
fi
if ! diff -u "$workdir/cold.table" "$workdir/warm.table"; then
    echo "warm_cache_check: FAILED — warm-cache run rendered a" \
         "different Figure 12 table than the cold run" >&2
    exit 1
fi
echo "tables byte-identical across cold and warm runs"

# The warm run must actually hit the cache for every artifact kind
# (model tables are stored per component: baseline core timing plus
# per-BSA region-eval tables).
for kind in trace tdgprof basecore regioneval; do
    if ! grep -qE "^ *${kind} +[1-9][0-9]* hits" "$workdir/warm.out"; then
        echo "warm_cache_check: FAILED — warm run shows no '${kind}'" \
             "cache hits (is --cache-dir wired through?)" >&2
        exit 1
    fi
done

echo "cold: ${cold_ms} ms   warm: ${warm_ms} ms"
if [[ -n "${PRISM_SKIP_PERF_CHECK:-}" ]]; then
    echo "PRISM_SKIP_PERF_CHECK set: skipping 3x speedup assertion"
    exit 0
fi
# warm * 3 <= cold  <=>  warm-cache speedup >= 3x.
if (( warm_ms * 3 > cold_ms )); then
    echo "warm_cache_check: FAILED — warm run (${warm_ms} ms) is not" \
         ">= 3x faster than cold (${cold_ms} ms)" >&2
    exit 1
fi
echo "warm_cache_check: all green (speedup >= 3x)"
