#!/usr/bin/env bash
# Full pre-merge check:
#   1. AddressSanitizer build + the whole tier-1 test suite,
#   2. an UndefinedBehaviorSanitizer build + the tier-1 suite
#      (findings abort: -fno-sanitize-recover=undefined),
#   3. a ThreadSanitizer build running the concurrency label (the
#      thread-pool, sweep-driver, search, sampled-validation, and
#      serve suites) — the chunked lock-free claim path, the
#      per-thread cache handles, the parallel sample fan-out, and the
#      daemon's reader/dispatcher handoff are only trusted once TSan
#      has watched them run,
#   4. an optimized build running the lint label (prism_lint over
#      every shipped workload and BSA transform, the static-analysis
#      and behavior unit tests, the static-vs-dynamic behavior
#      differential over the full suite, and clang-tidy when the host
#      has it) and the
#      perf-smoke label (streaming self-test, throughput guard vs the
#      committed baseline, warm-artifact-cache correctness + speedup,
#      the serve smoke + serve throughput guard vs BENCH_serve.json,
#      and the scaling guard: 4 sweep contexts must be >= 2.5x faster
#      than 1 on hosts with >= 4 CPUs; it self-skips elsewhere and
#      under PRISM_SKIP_PERF_CHECK),
#   5. a longer serve smoke on the optimized daemon: ephemeral-port
#      boot, 3 s mixed loadgen burst, SIGTERM, drain banner.
#
# Usage: scripts/check.sh [asan-build-dir] [ubsan-build-dir] \
#                         [perf-build-dir] [tsan-build-dir]
#
# The sanitized legs set PRISM_SKIP_PERF_CHECK=1 — throughput under a
# sanitizer is not comparable to the committed numbers, but every
# correctness test (including the streaming self-test) still runs.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
asan_build="${1:-"$repo/build-asan"}"
ubsan_build="${2:-"$repo/build-ubsan"}"
perf_build="${3:-"$repo/build"}"
tsan_build="${4:-"$repo/build-tsan"}"

echo "== configure (AddressSanitizer) =="
cmake -B "$asan_build" -S "$repo" -DPRISM_SANITIZE=address

echo "== build (ASan) =="
cmake --build "$asan_build" -j "$(nproc)"

echo "== tier-1 tests (ASan) =="
PRISM_SKIP_PERF_CHECK=1 ctest --test-dir "$asan_build" \
    --output-on-failure -j "$(nproc)"

echo "== configure (UndefinedBehaviorSanitizer) =="
cmake -B "$ubsan_build" -S "$repo" -DPRISM_SANITIZE=undefined

echo "== build (UBSan) =="
cmake --build "$ubsan_build" -j "$(nproc)"

echo "== tier-1 tests (UBSan) =="
PRISM_SKIP_PERF_CHECK=1 ctest --test-dir "$ubsan_build" \
    --output-on-failure -j "$(nproc)"

echo "== configure (ThreadSanitizer) =="
cmake -B "$tsan_build" -S "$repo" -DPRISM_SANITIZE=thread

echo "== build (TSan) =="
cmake --build "$tsan_build" -j "$(nproc)" \
    --target test_thread_pool test_sweep test_search \
             test_sampled_validate test_serve

echo "== concurrency tests (TSan) =="
# PRISM_OVERSUBSCRIBE: on few-CPU hosts the worker clamp would leave
# the pools effectively serial and hide every race from TSan; force
# real worker threads regardless of the CPU count.
PRISM_SKIP_PERF_CHECK=1 PRISM_OVERSUBSCRIBE=1 \
    ctest --test-dir "$tsan_build" \
    -L concurrency --output-on-failure -j "$(nproc)"

echo "== configure (optimized) =="
cmake -B "$perf_build" -S "$repo"

echo "== build (optimized) =="
cmake --build "$perf_build" -j "$(nproc)"

echo "== lint (prism_lint + behavior differential + clang-tidy) =="
ctest --test-dir "$perf_build" -L lint --output-on-failure

echo "== perf smoke (throughput guard vs committed baseline) =="
ctest --test-dir "$perf_build" -L perf-smoke --output-on-failure

echo "== serve smoke (daemon boot, loadgen burst, drain) =="
# The perf-smoke label already ran serve_smoke with a 1 s burst; this
# leg repeats it with a longer window on the optimized binaries so
# the drain protocol is exercised with real queue pressure.
"$repo/scripts/serve_smoke.sh" \
    "$perf_build/src/prism_serve" "$perf_build/src/prism_loadgen" 3

echo "== warm-cache correctness (full budget) =="
# The perf-smoke label already ran warm_cache_check at a reduced
# instruction budget; this leg repeats it at the default budget so
# the byte-identical guarantee is checked on the real tables.
"$repo/scripts/warm_cache_check.sh" \
    "$perf_build/bench/bench_fig12_design_space" --max-insts=200000

echo "check.sh: all green"
