#!/usr/bin/env bash
# Regenerate every paper table/figure twice — once against an empty
# artifact cache (cold: interpret, build TDGs, time every model) and
# once against the now-populated cache (warm: everything loads from
# disk) — and report both wall clocks. The warm pass is the "record
# once, explore many" workflow from paper Section 2.6: after one cold
# suite run, every subsequent figure regeneration is cache-bound.
#
# Usage: scripts/run_figures.sh [build-dir] [output-dir]
#
# Figure text lands in <output-dir>/<bench>.out (warm pass wins; the
# two passes render identical tables, which run_figures does not
# re-verify — `ctest -R warm_cache_check` and scripts/check.sh do).
# The cache directory persists across invocations: re-running this
# script is itself a warm run end to end.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build"}"
out="${2:-"$repo/figures"}"
cache="$out/cache"

benches=(
    bench_table1_validation
    bench_table4_cores
    bench_fig3_frontier
    bench_fig5_validation_detail
    bench_fig10_tradeoffs
    bench_fig11_workload_interaction
    bench_fig12_design_space
    bench_fig13_affinity
    bench_fig14_dynamic_switching
    bench_fig15_scheduler
    bench_ablation
)

mkdir -p "$out" "$cache"

now_ms() { date +%s%3N; }

# Prints the per-bench table on stderr, echoes total milliseconds.
run_pass() { # $1 = pass name
    local pass="$1" total=0
    printf '%-34s %10s\n' "bench ($pass)" "seconds" >&2
    for b in "${benches[@]}"; do
        local t0 t1 ms
        t0=$(now_ms)
        "$build/bench/$b" --cache-dir="$cache" > "$out/$b.out"
        t1=$(now_ms)
        ms=$((t1 - t0))
        total=$((total + ms))
        printf '%-34s %10.1f\n' "$b" \
            "$(awk "BEGIN{print $ms/1000}")" >&2
    done
    echo >&2
    echo "$total"
}

echo "== cold pass (cache: $cache) =="
cold_ms=$(run_pass cold)

echo "== warm pass (same cache) =="
warm_ms=$(run_pass warm)

awk "BEGIN{printf \"cold: %.1fs   warm: %.1fs   speedup: %.1fx\n\", \
     $cold_ms/1000, $warm_ms/1000, $cold_ms/$warm_ms}"
echo "figure text written to $out/*.out"
