#!/usr/bin/env bash
# Serve smoke check (registered as the ctest `serve_smoke` under
# -L perf-smoke, and run directly as a check.sh leg).
#
# Boots prism_serve on an ephemeral port with a tiny resident config,
# fires a short closed-loop burst from prism_loadgen, then sends
# SIGTERM and verifies the drain protocol. The check fails if
#   - the daemon never prints its `listening on 127.0.0.1:<port>` /
#     `ready (...)` banner,
#   - the loadgen exits non-zero (any query error fails it) or
#     reports zero completed queries,
#   - the daemon exits non-zero, or
#   - the daemon log is missing the `drained and stopped` line that
#     the shutdown path prints only after every admitted request has
#     been answered.
#
# Usage: scripts/serve_smoke.sh <prism_serve> <prism_loadgen> [secs]

set -euo pipefail

serve="${1:?usage: serve_smoke.sh <prism_serve> <prism_loadgen> [secs]}"
loadgen="${2:?usage: serve_smoke.sh <prism_serve> <prism_loadgen> [secs]}"
secs="${3:-1}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/prism_serve_smoke.XXXXXX")"
server_pid=""
cleanup() {
    [[ -n "$server_pid" ]] && kill -KILL "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

"$serve" --port=0 --workloads=ilp-chain,mem-random --max-insts=20000 \
    > "$workdir/serve.log" 2>&1 &
server_pid=$!

# The banner appears once the suite is resident; tiny config loads in
# well under a second, sanitized builds take a few.
port=""
for _ in $(seq 1 600); do
    port="$(sed -n 's/^prism_serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$workdir/serve.log")"
    [[ -n "$port" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve_smoke: FAILED — daemon exited before listening:" >&2
        cat "$workdir/serve.log" >&2
        server_pid=""
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$port" ]]; then
    echo "serve_smoke: FAILED — no listening banner after 60 s" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
echo "daemon up on port $port"

"$loadgen" --port="$port" --conns=2 --secs="$secs" --mix=mixed \
    --json="$workdir/loadgen.json" | tee "$workdir/loadgen.out"

if ! grep -qE '"queries": [1-9]' "$workdir/loadgen.json"; then
    echo "serve_smoke: FAILED — loadgen completed zero queries" >&2
    exit 1
fi

kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
if [[ "$server_rc" -ne 0 ]]; then
    echo "serve_smoke: FAILED — daemon exited with $server_rc:" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
if ! grep -q "prism_serve: drained and stopped" "$workdir/serve.log"; then
    echo "serve_smoke: FAILED — no drain banner in daemon log:" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
grep "drained and stopped" "$workdir/serve.log"
echo "serve_smoke: all green"
