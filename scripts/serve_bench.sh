#!/usr/bin/env bash
# Committed serve benchmark (registered as the ctest
# `serve_perf_guard` under -L perf-smoke, RUN_SERIAL).
#
# Boots prism_serve over the full workload suite (100k-instruction
# traces: resident in ~5 s, query behavior identical to the default
# budget since EVALs hit the warm model tables either way), then
# drives a closed-loop EVAL mix from prism_loadgen at 8 connections.
#
#   --update <json>   measure and overwrite the committed baseline
#   --check <json>    measure and enforce the baseline via the
#                     loadgen's --perf-check gate: >= 0.5x committed
#                     throughput, <= 3x committed p99 always, and the
#                     absolute floors (10k q/s, p99 < 10 ms) on hosts
#                     with >= 4 CPUs. PRISM_SKIP_PERF_CHECK=1 reports
#                     without enforcing; a missing baseline file
#                     passes (bootstrap).
#
# Usage: scripts/serve_bench.sh <prism_serve> <prism_loadgen>
#                               (--update|--check) <json> [secs]

set -euo pipefail

usage="usage: serve_bench.sh <prism_serve> <prism_loadgen> (--update|--check) <json> [secs]"
serve="${1:?$usage}"
loadgen="${2:?$usage}"
mode="${3:?$usage}"
json="${4:?$usage}"
secs="${5:-5}"
[[ "$mode" == "--update" || "$mode" == "--check" ]] || {
    echo "$usage" >&2
    exit 2
}

workdir="$(mktemp -d "${TMPDIR:-/tmp}/prism_serve_bench.XXXXXX")"
server_pid=""
cleanup() {
    [[ -n "$server_pid" ]] && kill -KILL "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

"$serve" --port=0 --max-insts=100000 > "$workdir/serve.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 1200); do
    port="$(sed -n 's/^prism_serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$workdir/serve.log")"
    [[ -n "$port" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve_bench: FAILED — daemon exited before listening:" >&2
        cat "$workdir/serve.log" >&2
        server_pid=""
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$port" ]]; then
    echo "serve_bench: FAILED — no listening banner after 120 s" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
grep "prism_serve: ready" "$workdir/serve.log" || true

# One short untimed burst first so the measured window never includes
# connection setup or first-touch effects.
"$loadgen" --port="$port" --conns=8 --secs=1 --mix=eval \
    --json="$workdir/warmup.json" > /dev/null

if [[ "$mode" == "--update" ]]; then
    "$loadgen" --port="$port" --conns=8 --secs="$secs" --mix=eval \
        --json="$json"
    echo "serve_bench: wrote $json"
else
    "$loadgen" --port="$port" --conns=8 --secs="$secs" --mix=eval \
        --json="$workdir/measured.json" --perf-check="$json"
fi

kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
if [[ "$rc" -ne 0 ]] ||
    ! grep -q "prism_serve: drained and stopped" "$workdir/serve.log"; then
    echo "serve_bench: FAILED — daemon did not drain cleanly (rc=$rc):" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
echo "serve_bench: all green"
