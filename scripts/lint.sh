#!/usr/bin/env bash
# clang-tidy over the library sources, driven by the compile database
# CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on). The
# container used for CI images may not ship clang-tidy; in that case
# the script reports the skip and exits 0 so `ctest -L lint` and
# scripts/check.sh stay green on gcc-only hosts.
#
# usage: scripts/lint.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found in PATH; skipping" >&2
    exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing;" \
         "configure with cmake first" >&2
    exit 1
fi

mapfile -t SOURCES < <(git ls-files 'src/*.cc')

# The pathspec above is recursive, so subsystems added later (the
# src/serve daemon, the src/tdg/search driver, the src/analysis
# behavior pass) ride along automatically — but guard against a
# pathspec regression ever silently shrinking the run.
for must in src/serve/server.cc src/tdg/search.cc \
            src/analysis/behavior.cc; do
    if ! printf '%s\n' "${SOURCES[@]}" | grep -qx "$must"; then
        echo "lint.sh: expected $must in the clang-tidy run" >&2
        exit 1
    fi
done

echo "lint.sh: clang-tidy over ${#SOURCES[@]} sources"
clang-tidy -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
