/**
 * @file
 * Regenerates Figure 5: the per-workload validation scatter data.
 * For each architecture row of the figure, prints (workload,
 * projected, reference) pairs for performance and energy — the
 * coordinates of the paper's scatter plots, where distance from the
 * unit line is the modeling error.
 */

#include "validation_common.hh"

using namespace prism;
using namespace prism::bench;

namespace
{

void
printPoints(const char *title, const char *metric,
            const std::vector<ValPoint> &pts)
{
    std::printf("\n-- %s: %s (projected vs reference) --\n", title,
                metric);
    Table t({"workload", "projected", "reference", "err"});
    for (const ValPoint &p : pts) {
        t.addRow({p.name, fmt(p.projected, 3), fmt(p.reference, 3),
                  fmtPct(p.relError(), 1)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("avg error: %s\n",
                fmtPct(avgError(pts), 1).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Figure 5: Prism Validation (scatter data)");

    ThreadPool pool(opt.threads);
    auto micro = loadMicrobenchmarks();
    {
        const CoreValidation v1 =
            validateCore(pool, micro, CoreKind::OOO1);
        printPoints("OOO8->OOO1 Model", "IPC (uops/cycle)", v1.ipc);
        printPoints("OOO8->OOO1 Model", "IPE (uops/unit energy)",
                    v1.ipe);
        const CoreValidation v8 =
            validateCore(pool, micro, CoreKind::OOO8);
        printPoints("OOO1->OOO8 Model", "IPC (uops/cycle)", v8.ipc);
        printPoints("OOO1->OOO8 Model", "IPE (uops/unit energy)",
                    v8.ipe);
    }

    auto suite = loadSuite();
    loadEntries(pool, suite);
    struct Row
    {
        const char *label;
        BsaKind bsa;
    };
    const Row rows[] = {
        {"Conservation Cores (NS-DF model)", BsaKind::Nsdf},
        {"BERET (Trace-P model)", BsaKind::Tracep},
        {"SIMD", BsaKind::Simd},
        {"DySER (DP-CGRA model)", BsaKind::DpCgra},
    };
    for (const Row &row : rows) {
        const BsaValidation v =
            validateBsa(pool, suite, row.bsa,
                        validationBase(row.bsa),
                        validationSet(row.bsa));
        printPoints(row.label, "Speedup over Base", v.speedup);
        printPoints(row.label, "Energy Reduction", v.energy);
    }
    return 0;
}
