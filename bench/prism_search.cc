/**
 * @file
 * Generalized design-space search driver (tdg/search.hh): evaluates
 * thousands of (core-parameter, BSA-subset, area-budget) points per
 * workload on top of the component-memoized model caches, and prints
 * the Pareto frontier over (speedup, energy efficiency, area).
 *
 * Where the fig12 bench reproduces the paper's fixed 96-point grid,
 * this binary explores beyond it: a 16-point parametric core grid by
 * default, or `--mode=sample --samples=N` for N deterministic random
 * core points. Component memoization (RAM LRU in front of the disk
 * artifact cache) makes the per-point cost scheduler-composition
 * only, so the thousand-point run costs little more than its unique
 * (workload, core) component builds.
 *
 * Flags (in addition to the shared --threads/--cache-dir/--max-insts):
 *   --mode=grid|sample     core list: default grid or random samples
 *   --samples=N            sample count for --mode=sample (default 64)
 *   --seed=N               sample seed (default 1)
 *   --workloads=a,b,c      subset of workloads (default: full suite)
 *   --masks=N              BSA subset masks [0, N) (default 16)
 *   --budgets=a,b,c        area budgets in mm^2 (default unbounded)
 *   --sched=oracle|amdahl  region-selection policy (default oracle)
 *   --shard=I/N            evaluate grid indices i with i % N == I
 *   --top=N                rows of the ranked table (default 20)
 *   --export-dataset=FILE  write the per-(workload, point) CSV
 *   --self-test            correctness checks (differential vs the
 *                          monolithic model, thread-count and shard
 *                          determinism); exits non-zero on failure
 */

#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_util.hh"
#include "common/memo_cache.hh"
#include "energy/area_model.hh"
#include "tdg/search.hh"

namespace prism
{
namespace
{

using bench::Stopwatch;

struct SearchOptions
{
    bench::BenchOptions common;
    bool sample = false;
    std::size_t samples = 64;
    std::uint64_t seed = 1;
    std::vector<std::string> workloads;
    unsigned masks = 16;
    std::vector<double> budgets;
    SchedulerKind sched = SchedulerKind::Oracle;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    std::size_t top = 20;
    std::string datasetPath;
    bool selfTest = false;
};

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t b = 0;
    while (b <= s.size()) {
        const std::size_t e = s.find(',', b);
        if (e == std::string::npos) {
            if (b < s.size())
                out.push_back(s.substr(b));
            break;
        }
        if (e > b)
            out.push_back(s.substr(b, e - b));
        b = e + 1;
    }
    return out;
}

SearchOptions
parseArgs(int argc, char **argv)
{
    SearchOptions opt;
    opt.common.threads = defaultThreadCount();
    auto value = [&](int &i, const char *flag,
                     std::string &out) -> bool {
        const std::size_t len = std::strlen(flag);
        if (std::strncmp(argv[i], flag, len) != 0)
            return false;
        if (argv[i][len] == '=') {
            out = argv[i] + len + 1;
            return true;
        }
        if (argv[i][len] == '\0') {
            if (i + 1 >= argc)
                fatal("%s requires a value", flag);
            out = argv[++i];
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (std::strcmp(argv[i], "--self-test") == 0) {
            opt.selfTest = true;
        } else if (value(i, "--mode", v)) {
            if (v == "sample")
                opt.sample = true;
            else if (v != "grid")
                fatal("--mode must be grid or sample, got '%s'",
                      v.c_str());
        } else if (value(i, "--samples", v)) {
            const long long n = std::atoll(v.c_str());
            if (n <= 0)
                fatal("--samples needs a positive integer");
            opt.samples = static_cast<std::size_t>(n);
        } else if (value(i, "--seed", v)) {
            opt.seed = static_cast<std::uint64_t>(
                std::strtoull(v.c_str(), nullptr, 10));
        } else if (value(i, "--workloads", v)) {
            opt.workloads = splitCsv(v);
        } else if (value(i, "--masks", v)) {
            const int n = std::atoi(v.c_str());
            if (n < 1 || n > 16)
                fatal("--masks must be in [1, 16], got '%s'",
                      v.c_str());
            opt.masks = static_cast<unsigned>(n);
        } else if (value(i, "--budgets", v)) {
            std::string err;
            if (!parseAreaBudgets(v, opt.budgets, err))
                fatal("--budgets: %s", err.c_str());
        } else if (value(i, "--sched", v)) {
            if (v == "amdahl")
                opt.sched = SchedulerKind::AmdahlTree;
            else if (v != "oracle")
                fatal("--sched must be oracle or amdahl, got '%s'",
                      v.c_str());
        } else if (value(i, "--shard", v)) {
            std::string err;
            if (!parseShardSpec(v, opt.shardIndex, opt.shardCount,
                                err))
                fatal("--shard: %s", err.c_str());
        } else if (value(i, "--top", v)) {
            opt.top = static_cast<std::size_t>(std::atoll(v.c_str()));
        } else if (value(i, "--export-dataset", v)) {
            opt.datasetPath = v;
        } else if (value(i, "--cache-dir", v)) {
            opt.common.cacheDir = v;
        } else if (value(i, "--threads", v)) {
            const int n = std::atoi(v.c_str());
            if (n <= 0)
                fatal("--threads needs a positive integer");
            opt.common.threads = static_cast<unsigned>(n);
        } else if (value(i, "--max-insts", v)) {
            const long long n = std::atoll(v.c_str());
            if (n <= 0)
                fatal("--max-insts needs a positive integer");
            opt.common.maxInsts = static_cast<std::uint64_t>(n);
        } else {
            fatal("unknown option '%s' (see the file header for the "
                  "flag list)",
                  argv[i]);
        }
    }
    if (!opt.common.cacheDir.empty())
        ArtifactCache::setGlobalDir(opt.common.cacheDir);
    if (opt.common.maxInsts)
        setMaxInstsOverride(opt.common.maxInsts);
    return opt;
}

std::vector<WorkloadSpec>
selectWorkloads(const SearchOptions &opt)
{
    std::vector<WorkloadSpec> specs;
    if (opt.workloads.empty()) {
        for (const WorkloadSpec &s : allWorkloads())
            specs.push_back(s);
    } else {
        for (const std::string &name : opt.workloads)
            specs.push_back(findWorkload(name));
    }
    return specs;
}

SearchSpace
spaceFor(const SearchOptions &opt)
{
    SearchSpace space;
    if (opt.sample)
        space.cores = sampleCoreParams(opt.samples, opt.seed);
    space.numMasks = opt.masks;
    space.areaBudgets = opt.budgets;
    space.sched = opt.sched;
    space.shardIndex = opt.shardIndex;
    space.shardCount = opt.shardCount;
    return space;
}

int
runSearch(const SearchOptions &opt)
{
    const std::vector<WorkloadSpec> specs = selectWorkloads(opt);
    ThreadPool pool(opt.common.threads);
    DesignSearch search(spaceFor(opt), specs);

    std::printf("design-space search: %zu cores x %u masks x %zu "
                "budget(s) = %zu points",
                search.space().cores.size(), search.space().numMasks,
                search.space().areaBudgets.size(),
                searchGridSize(search.space()));
    if (opt.shardCount > 1)
        std::printf(" (shard %u/%u: %zu points)", opt.shardIndex,
                    opt.shardCount, search.shardPoints().size());
    std::printf(", %zu workload(s), %u thread(s)\n", specs.size(),
                pool.size());

    Stopwatch sw;
    search.load(pool);
    std::printf("loaded %zu trace insts in %.2f s\n",
                search.loadedInsts(), sw.seconds());

    sw.reset();
    search.prepare(pool);
    std::printf("prepared %zu (workload, core) models in %.2f s\n",
                specs.size() * (search.shardCoreIndices().size() + 1),
                sw.seconds());

    sw.reset();
    const std::vector<SearchPoint> points = search.run(pool);
    const double run_s = sw.seconds();
    std::printf("evaluated %zu points in %.2f s (%.0f points/s)\n",
                points.size(), run_s,
                run_s > 0 ? static_cast<double>(points.size()) / run_s
                          : 0.0);

    bench::banner("top configurations");
    std::fputs(renderSearchTable(points, opt.top).c_str(), stdout);

    bench::banner("Pareto frontier");
    std::fputs(renderParetoFrontier(points).c_str(), stdout);

    if (!opt.datasetPath.empty()) {
        std::ofstream os(opt.datasetPath);
        if (!os)
            fatal("cannot open '%s' for writing",
                  opt.datasetPath.c_str());
        search.exportDataset(os);
        std::printf("\nwrote dataset to %s\n",
                    opt.datasetPath.c_str());
    }

    std::printf("\n");
    bench::printCacheSummary();
    std::printf("%s\n", MemoCache::global().summary().c_str());
    return 0;
}

// ---------------------------------------------------------------- //
// --self-test: the search engine's correctness contracts, small
// enough for a ctest perf-smoke slot.
// ---------------------------------------------------------------- //

int g_failures = 0;

void
expect(bool ok, const char *what)
{
    std::printf("  %-60s %s\n", what, ok ? "OK" : "FAIL");
    if (!ok)
        ++g_failures;
}

/** Component-memoized model == monolithic model, every mask, both
 *  schedulers, parametric core points included. */
void
selfTestDifferential(const std::vector<WorkloadSpec> &specs)
{
    std::printf("differential: component-memoized vs monolithic\n");
    std::vector<CoreParams> cores = {coreParams(CoreKind::IO2),
                                     coreParams(CoreKind::OOO4)};
    CoreParams custom = coreParams(CoreKind::OOO2);
    custom.instWindow = 24;
    custom.numAlu = 3;
    cores.push_back(custom);

    for (const WorkloadSpec &spec : specs) {
        const auto lw = LoadedWorkload::load(spec);
        for (const CoreParams &core : cores) {
            const PipelineConfig cfg = pipelineConfigFrom(core);
            const BenchmarkModel mono(lw->tdg(), cfg);
            const auto memo =
                buildModelCached(ArtifactCache::global(), lw->name(),
                                 lw->tdg(), lw->maxInsts(), cfg);
            bool same = true;
            for (unsigned mask = 0; mask < 16 && same; ++mask) {
                for (SchedulerKind sched :
                     {SchedulerKind::Oracle,
                      SchedulerKind::AmdahlTree}) {
                    const ExoResult a = mono.evaluate(mask, sched);
                    const ExoResult b = memo->evaluate(mask, sched);
                    if (a.cycles != b.cycles ||
                        a.energy != b.energy) {
                        same = false;
                        break;
                    }
                }
            }
            std::string what = std::string(spec.name) + " @ " +
                               coreParamsName(core) +
                               " identical (16 masks x 2 scheds)";
            expect(same, what.c_str());
        }
    }
}

/** Rendered tables byte-identical at 1 and 4 threads. */
void
selfTestThreadDeterminism(const std::vector<WorkloadSpec> &specs)
{
    std::printf("determinism: byte-identical across thread counts\n");
    SearchSpace space;
    space.cores = defaultCoreGrid();
    space.cores.resize(4);
    space.areaBudgets = {1.5, 0.0};

    std::string table1, frontier1;
    {
        ThreadPool pool(1);
        DesignSearch search(space, specs);
        search.prepare(pool);
        const auto points = search.run(pool);
        table1 = renderSearchTable(points);
        frontier1 = renderParetoFrontier(points);
    }
    std::string table4, frontier4;
    {
        ThreadPool pool(4);
        DesignSearch search(space, specs);
        search.prepare(pool);
        const auto points = search.run(pool);
        table4 = renderSearchTable(points);
        frontier4 = renderParetoFrontier(points);
    }
    expect(!table1.empty() && table1 == table4,
           "ranked table byte-identical (1 vs 4 threads)");
    expect(!frontier1.empty() && frontier1 == frontier4,
           "Pareto frontier byte-identical (1 vs 4 threads)");
}

/** Shards partition the grid exactly and reproduce the unsharded
 *  metrics point for point. */
void
selfTestSharding(const std::vector<WorkloadSpec> &specs)
{
    std::printf("sharding: exact partition of the grid\n");
    SearchSpace space;
    space.cores = defaultCoreGrid();
    space.cores.resize(3);
    space.numMasks = 8;

    ThreadPool pool(2);
    DesignSearch full(space, specs);
    full.prepare(pool);
    const auto all = full.run(pool);

    constexpr unsigned kShards = 3;
    std::vector<SearchPoint> merged;
    for (unsigned s = 0; s < kShards; ++s) {
        SearchSpace shard_space = space;
        shard_space.shardIndex = s;
        shard_space.shardCount = kShards;
        DesignSearch shard(shard_space, specs);
        shard.prepare(pool);
        const auto part = shard.run(pool);
        merged.insert(merged.end(), part.begin(), part.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const SearchPoint &a, const SearchPoint &b) {
                  return a.gridIndex < b.gridIndex;
              });
    bool exact = merged.size() == all.size();
    for (std::size_t i = 0; exact && i < all.size(); ++i) {
        exact = merged[i].gridIndex == all[i].gridIndex &&
                merged[i].name == all[i].name &&
                merged[i].speedup == all[i].speedup &&
                merged[i].energyEff == all[i].energyEff &&
                merged[i].area == all[i].area;
    }
    expect(exact, "3-shard union == unsharded grid, metrics equal");

    expect(renderSearchTable(merged) == renderSearchTable(all),
           "merged shard table byte-identical to unsharded");
}

/** The exported dataset is stable: two exports agree byte for byte
 *  and carry one row per (workload, point). */
void
selfTestDataset(const std::vector<WorkloadSpec> &specs)
{
    std::printf("dataset export: stable schema and ordering\n");
    SearchSpace space;
    space.cores = defaultCoreGrid();
    space.cores.resize(2);
    space.numMasks = 4;

    ThreadPool pool(2);
    DesignSearch search(space, specs);
    search.prepare(pool);

    std::ostringstream a, b;
    search.exportDataset(a);
    search.exportDataset(b);
    expect(!a.str().empty() && a.str() == b.str(),
           "two exports byte-identical");

    const std::string text = a.str();
    const std::size_t rows =
        static_cast<std::size_t>(std::count(text.begin(), text.end(),
                                            '\n'));
    const std::size_t want =
        2 + specs.size() * search.shardPoints().size();
    expect(rows == want, "one row per (workload, point) + header");
    expect(text.rfind("# prism-dataset v2\n", 0) == 0,
           "schema version header present");
    // v2 carries the static behavior features for every workload.
    expect(text.find("sb_nsdf_yes") != std::string::npos,
           "static behavior feature columns present");
}

/** The RAM memoization tier's counters are live and consistent:
 *  the runs above populated it (insertions), revisits hit it, and
 *  residency respects the byte budget. */
void
selfTestRamCache()
{
    std::printf("RAM cache observability (common/memo_cache)\n");
    MemoCache &cache = MemoCache::global();
    const MemoCache::Stats s = cache.stats();
    expect(s.insertions > 0,
           "component builds inserted into the RAM tier");
    expect(s.hits > 0, "revisited components hit the RAM tier");
    expect(s.bytes <= cache.maxBytes(),
           "resident bytes within the configured budget");
    std::printf("  %s\n", cache.summary().c_str());
}

int
runSelfTest(const SearchOptions &opt)
{
    // Two small vertical microbenchmarks keep the self-test inside a
    // perf-smoke budget while still covering a regular and an
    // irregular workload.
    if (!opt.common.maxInsts)
        setMaxInstsOverride(40'000);
    std::vector<WorkloadSpec> specs = {findWorkload("ilp-chain"),
                                       findWorkload("mem-random")};

    selfTestDifferential(specs);
    selfTestThreadDeterminism(specs);
    selfTestSharding(specs);
    selfTestDataset(specs);
    selfTestRamCache();

    std::printf("prism_search --self-test: %s\n",
                g_failures == 0 ? "all green" : "FAILED");
    return g_failures == 0 ? 0 : 1;
}

} // namespace
} // namespace prism

int
main(int argc, char **argv)
{
    const prism::SearchOptions opt = prism::parseArgs(argc, argv);
    if (opt.selfTest)
        return prism::runSelfTest(opt);
    return prism::runSearch(opt);
}
