/**
 * @file
 * Shared logic for the Table 1 / Figure 5 validation experiments.
 *
 * Core validation: the µDG longest-path timing of baseline streams is
 * compared against the discrete-event reference simulator at the
 * 1-wide and 8-wide OOO extremes (the paper's cross-validation).
 *
 * BSA validation: for each accelerator, the TDG transform is applied
 * to every loop its analysis accepts; the *same* rewritten streams
 * are then timed by (a) the µDG longest-path model (the projection)
 * and (b) the discrete-event simulator (the reference). The compared
 * quantities are relative speedup and energy reduction over a common
 * baseline core, exactly as in the paper's Table 1.
 */

#ifndef PRISM_BENCH_VALIDATION_COMMON_HH
#define PRISM_BENCH_VALIDATION_COMMON_HH

#include <functional>

#include "bench_util.hh"

#include "energy/energy_model.hh"
#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "uarch/pipeline_model.hh"

namespace prism::bench
{

/** Projected-vs-reference pair for one workload. */
struct ValPoint
{
    std::string name;
    double projected = 0;
    double reference = 0;

    double
    relError() const
    {
        return reference != 0
                   ? std::abs(projected / reference - 1.0)
                   : 0.0;
    }
};

/** Core-model validation: µDG IPC/IPE vs discrete-event simulation. */
struct CoreValidation
{
    std::vector<ValPoint> ipc;
    std::vector<ValPoint> ipe; ///< instructions per unit energy
};

inline CoreValidation
validateCore(ThreadPool &pool, std::vector<Entry> &entries,
             CoreKind core)
{
    const CoreConfig &cfg = coreConfig(core);
    PipelineConfig pcfg;
    pcfg.core = cfg;
    const PipelineModel model(pcfg);
    const CycleCoreSim sim(pcfg);
    const EnergyModel em(cfg);

    loadEntries(pool, entries);

    // Both timing machines are const/stateless; one task per entry
    // with results placed by index keeps the rows in input order.
    struct Pair
    {
        ValPoint ipc;
        ValPoint ipe;
    };
    const std::vector<Pair> pairs =
        parallelMapIndex(pool, entries.size(), [&](std::size_t i) {
            const Entry &e = entries[i];
            const MStream stream = buildCoreStream(e.tdg().trace());
            const PipelineResult proj = model.run(stream);
            const Cycle ref_cycles = sim.run(stream);
            const double n = static_cast<double>(stream.size());

            Pair out;
            out.ipc.name = e.name();
            out.ipc.projected = n / static_cast<double>(proj.cycles);
            out.ipc.reference =
                n / static_cast<double>(ref_cycles);

            // Same events either way; energies differ via leakage.
            out.ipe.name = e.name();
            out.ipe.projected =
                n / em.energy(proj.events, proj.cycles);
            out.ipe.reference =
                n / em.energy(proj.events, ref_cycles);
            return out;
        });

    CoreValidation val;
    for (const Pair &p : pairs) {
        val.ipc.push_back(p.ipc);
        val.ipe.push_back(p.ipe);
    }
    return val;
}

/** Timing executor: either the µDG model or the reference sim. */
using Executor = std::function<Cycle(const MStream &)>;

/** Speedup + energy-reduction of "accelerate every analyzable
 *  region" under a given timing executor. */
struct SideEval
{
    bool applicable = false;
    double speedup = 1.0;
    double energyReduction = 1.0;
};

inline SideEval
evalSide(const BenchmarkModel &bm, const Tdg &tdg, BsaKind bsa,
         const Executor &exec, const EnergyModel &em)
{
    SideEval out;
    const TdgAnalyzer &an = bm.analyzer();
    const int u_is_offload =
        (bsa == BsaKind::Nsdf || bsa == BsaKind::Tracep) ? 1 : 0;

    const MStream base_stream = buildCoreStream(tdg.trace());
    const Cycle base_cycles = exec(base_stream);
    const EventCounts base_ev = tallyEvents(base_stream);
    const double base_energy = em.energy(base_ev, base_cycles);

    double cycles = static_cast<double>(base_cycles);
    double energy = base_energy;

    auto transform = makeTransform(bsa, tdg, an);
    for (const Loop &loop : tdg.loops().loops()) {
        if (!an.usable(bsa, loop.id))
            continue;
        if (bsa == BsaKind::Nsdf && loop.parent >= 0 &&
            an.usable(bsa, loop.parent)) {
            continue; // take the outermost usable nest only
        }
        const auto occs = tdg.occurrencesOf(loop.id);
        if (occs.empty())
            continue;

        // Region baseline: the loop's occurrences, concatenated.
        std::vector<std::pair<DynId, DynId>> ranges;
        for (const LoopOccurrence *occ : occs)
            ranges.emplace_back(occ->begin, occ->end);
        std::vector<std::size_t> bounds;
        const MStream core_region =
            buildCoreStreamRanges(tdg.trace(), ranges, bounds);
        const Cycle base_region = exec(core_region);
        const EventCounts core_ev = tallyEvents(core_region);

        // Region accelerated: the transformed stream.
        const TransformOutput tf_out =
            transform->transformLoop(loop.id, occs);
        if (tf_out.stream.empty())
            continue;
        const Cycle accel_region = exec(tf_out.stream);
        const EventCounts accel_ev = tallyEvents(tf_out.stream);

        Cycle gated = 0;
        if (u_is_offload) {
            const double frac =
                static_cast<double>(
                    accel_ev.unitInsts[static_cast<std::size_t>(
                        bsa == BsaKind::Nsdf ? ExecUnit::Nsdf
                                             : ExecUnit::Tracep)]) /
                static_cast<double>(tf_out.stream.size());
            gated = static_cast<Cycle>(
                static_cast<double>(accel_region) * frac);
        }

        out.applicable = true;
        cycles += static_cast<double>(accel_region) -
                  static_cast<double>(base_region);
        energy += em.energy(accel_ev, accel_region, gated) -
                  em.energy(core_ev, base_region);
    }
    if (!out.applicable)
        return out;
    out.speedup =
        static_cast<double>(base_cycles) / std::max(1.0, cycles);
    out.energyReduction = base_energy / std::max(1.0, energy);
    return out;
}

/** Validation rows for one BSA over a benchmark list. */
struct BsaValidation
{
    std::vector<ValPoint> speedup;
    std::vector<ValPoint> energy; ///< energy reduction
};

inline BsaValidation
validateBsa(ThreadPool &pool, std::vector<Entry> &entries,
            BsaKind bsa, CoreKind base,
            const std::vector<std::string> &names)
{
    PipelineConfig pcfg;
    pcfg.core = coreConfig(base);
    const PipelineModel model(pcfg);
    const CycleCoreSim sim(pcfg);
    const EnergyModel em(pcfg.core,
                         static_cast<unsigned>(kAllBsas.size()));

    const Executor proj_exec = [&model](const MStream &s) {
        return model.run(s).cycles;
    };
    const Executor ref_exec = [&sim](const MStream &s) {
        return sim.run(s);
    };

    // The benchmark list of this validation row, in input order.
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (names.empty() ||
            std::find(names.begin(), names.end(),
                      entries[i].name()) != names.end()) {
            selected.push_back(i);
        }
    }

    // Mutate phase (one task per entry), then const evaluation.
    pool.parallelFor(selected.size(), [&](std::size_t k) {
        entries[selected[k]].buildModel(base);
    });

    struct Row
    {
        bool applicable = false;
        ValPoint speedup;
        ValPoint energy;
    };
    const std::vector<Row> rows =
        parallelMapIndex(pool, selected.size(), [&](std::size_t k) {
            const Entry &e = entries[selected[k]];
            const BenchmarkModel &bm = e.model(base);
            Row row;
            const SideEval proj =
                evalSide(bm, e.tdg(), bsa, proj_exec, em);
            const SideEval ref =
                evalSide(bm, e.tdg(), bsa, ref_exec, em);
            if (!proj.applicable || !ref.applicable)
                return row;
            row.applicable = true;
            row.speedup.name = e.name();
            row.speedup.projected = proj.speedup;
            row.speedup.reference = ref.speedup;
            row.energy.name = e.name();
            row.energy.projected = proj.energyReduction;
            row.energy.reference = ref.energyReduction;
            return row;
        });

    BsaValidation val;
    for (const Row &row : rows) {
        if (!row.applicable)
            continue;
        val.speedup.push_back(row.speedup);
        val.energy.push_back(row.energy);
    }
    return val;
}

/** Average |relative error| over points. */
inline double
avgError(const std::vector<ValPoint> &pts)
{
    if (pts.empty())
        return 0.0;
    double acc = 0;
    for (const ValPoint &p : pts)
        acc += p.relError();
    return acc / static_cast<double>(pts.size());
}

/** "lo - hi" range string of the reference metric. */
inline std::string
rangeOf(const std::vector<ValPoint> &pts)
{
    if (pts.empty())
        return "-";
    double lo = pts.front().reference;
    double hi = lo;
    for (const ValPoint &p : pts) {
        lo = std::min(lo, p.reference);
        hi = std::max(hi, p.reference);
    }
    return fmt(lo, 2) + " - " + fmt(hi, 2);
}

/** The per-BSA validation benchmark lists (paper Section 2.5). */
inline std::vector<std::string>
validationSet(BsaKind bsa)
{
    switch (bsa) {
      case BsaKind::Nsdf: // stands in for Conservation Cores
        return {"djpeg-2", "cjpeg-2", "175.vpr", "429.mcf",
                "401.bzip2", "256.bzip2"};
      case BsaKind::Tracep: // stands in for BERET
        return {"181.mcf", "429.mcf", "164.gzip", "175.vpr",
                "197.parser", "256.bzip2", "cjpeg-2", "gsmdecode",
                "gsmencode"};
      case BsaKind::Simd:
        return {"conv", "merge", "nbody", "radar", "treesearch",
                "vr", "cutcp", "fft", "kmeans", "lbm", "mm",
                "needle", "spmv", "stencil"};
      case BsaKind::DpCgra: // stands in for DySER
        return {"conv", "merge", "nbody", "radar", "treesearch",
                "vr", "cutcp", "fft", "kmeans", "lbm", "mm",
                "needle", "spmv", "stencil"};
    }
    return {};
}

/** The paper's baseline core for each validated accelerator. */
inline CoreKind
validationBase(BsaKind bsa)
{
    switch (bsa) {
      case BsaKind::Nsdf:
      case BsaKind::Tracep:
        return CoreKind::IO2; // C-Cores/BERET used IO2 bases
      default:
        return CoreKind::OOO4; // SIMD/DySER used OOO4
    }
}

} // namespace prism::bench

#endif // PRISM_BENCH_VALIDATION_COMMON_HH
