/**
 * @file
 * google-benchmark microbenchmarks of the framework itself: trace
 * generation, TDG construction, µDG timing, transform application,
 * and the discrete-event reference simulator — the practicality
 * argument of Section 2 (a TDG model is cheap enough for large
 * design-space exploration).
 */

#include <benchmark/benchmark.h>

#include "sim/trace_gen.hh"
#include "tdg/analyzer.hh"
#include "tdg/bsa/bsa.hh"
#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

/** Shared fixture state: one mid-size workload, loaded once. */
struct Fixture
{
    std::unique_ptr<LoadedWorkload> lw;
    MStream baseline;

    Fixture()
    {
        lw = LoadedWorkload::load(findWorkload("conv"));
        baseline = buildCoreStream(lw->tdg().trace());
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("conv");
    for (auto _ : state) {
        ProgramBuilder pb;
        SimMemory mem;
        std::vector<std::int64_t> args;
        spec.build(pb, mem, args);
        const Program prog = pb.build();
        Trace trace(&prog);
        TraceGenConfig cfg;
        cfg.maxInsts = 100'000;
        generateTrace(prog, mem, args, trace, cfg);
        benchmark::DoNotOptimize(trace.size());
        state.SetItemsProcessed(state.items_processed() +
                                trace.size());
    }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_TdgConstruction(benchmark::State &state)
{
    const Program &prog = fixture().lw->program();
    const Trace &src = fixture().lw->tdg().trace();
    for (auto _ : state) {
        Trace copy(&prog);
        copy.reserve(src.size());
        for (const DynInst &di : src.insts())
            copy.push(di);
        const Tdg tdg(prog, std::move(copy));
        benchmark::DoNotOptimize(tdg.loops().numLoops());
        state.SetItemsProcessed(state.items_processed() +
                                src.size());
    }
}
BENCHMARK(BM_TdgConstruction)->Unit(benchmark::kMillisecond);

void
BM_PipelineTiming(benchmark::State &state)
{
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    const MStream &stream = fixture().baseline;
    for (auto _ : state) {
        const PipelineResult res = model.run(stream);
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
}
BENCHMARK(BM_PipelineTiming)->Unit(benchmark::kMillisecond);

void
BM_SimdTransform(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    const TdgAnalyzer an(tdg);
    for (auto _ : state) {
        SimdTransform tf(tdg, an);
        for (const Loop &loop : tdg.loops().loops()) {
            if (!tf.canTarget(loop.id))
                continue;
            const TransformOutput out =
                tf.transformLoop(loop.id,
                                 tdg.occurrencesOf(loop.id));
            benchmark::DoNotOptimize(out.stream.size());
        }
    }
}
BENCHMARK(BM_SimdTransform)->Unit(benchmark::kMillisecond);

void
BM_AnalyzerPasses(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    for (auto _ : state) {
        const TdgAnalyzer an(tdg);
        benchmark::DoNotOptimize(&an);
    }
}
BENCHMARK(BM_AnalyzerPasses)->Unit(benchmark::kMillisecond);

void
BM_CycleAccurateReference(benchmark::State &state)
{
    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    const MStream &stream = fixture().baseline;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(stream));
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
}
BENCHMARK(BM_CycleAccurateReference)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace prism

BENCHMARK_MAIN();
