/**
 * @file
 * google-benchmark microbenchmarks of the framework itself: trace
 * generation, TDG construction, µDG timing, transform application,
 * and the discrete-event reference simulator — the practicality
 * argument of Section 2 (a TDG model is cheap enough for large
 * design-space exploration).
 *
 * The *Streamed variants drive the windowed engines through reusable
 * scratches and report an `allocs_per_iter` counter from a global
 * operator-new hook — the steady-state timing loop must not touch
 * the heap. Results are also written to BENCH_framework.json
 * (benchmark → M-insts/s and wall-clock ms).
 *
 * `--self-test` skips benchmarking and instead asserts the streaming
 * contracts directly (windowed timing cycle-identical to full-stream
 * for window sizes {1, 7, 10000}; zero steady-state allocations);
 * CTest runs this under the `perf-smoke` label.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>
#include <string>

#include "common/artifact_cache.hh"
#include "common/memo_cache.hh"
#include "common/thread_pool.hh"
#include "sim/trace_gen.hh"
#include "tdg/analyzer.hh"
#include "tdg/artifacts.hh"
#include "tdg/bsa/bsa.hh"
#include "tdg/builder.hh"
#include "tdg/constructor.hh"
#include "tdg/exocore.hh"
#include "tdg/reference/ref_models.hh"
#include "tdg/search.hh"
#include "tdg/sweep.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

// ---- Global allocation counter ------------------------------------
// Counts every operator-new call in the process; benchmarks snapshot
// it around their timed loops to prove the steady-state timing core
// is allocation-free.

namespace
{
std::atomic<std::uint64_t> g_allocCount{0};

std::uint64_t
allocsNow()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t n)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace prism
{
namespace
{

/** Chunk size for feeding persistent streams window-by-window. */
constexpr std::size_t kChunk = 8192;

/** Shared fixture state: one mid-size workload, loaded once. */
struct Fixture
{
    std::unique_ptr<LoadedWorkload> lw;
    MStream baseline;

    Fixture()
    {
        lw = LoadedWorkload::load(findWorkload("conv"));
        baseline = buildCoreStream(lw->tdg().trace());
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

/**
 * Steady-state trace generation through the fused FrontEnd: the
 * program, memory and front end are constructed once (as in
 * LoadedWorkload::load) and each iteration re-executes the workload
 * through the reused interpreter scratch into a reused trace buffer.
 * Re-running on the executed memory image is deterministic — the
 * self-test asserts repeat runs are bit-identical.
 */
void
BM_TraceGeneration(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("conv");
    ProgramBuilder pb;
    SimMemory mem;
    std::vector<std::int64_t> args;
    spec.build(pb, mem, args);
    const Program prog = pb.build();
    TraceGenConfig cfg;
    cfg.maxInsts = 100'000;
    FrontEnd fe(prog, mem, cfg);
    Trace trace(&prog);
    const auto body = [&] {
        trace.clear();
        fe.run(args, [&](const DynInst *d, std::size_t n, DynId) {
            trace.append(d, n);
        });
        return trace.size();
    };
    benchmark::DoNotOptimize(body()); // warm scratches and capacity
    for (auto _ : state) {
        benchmark::DoNotOptimize(body());
        state.SetItemsProcessed(state.items_processed() +
                                trace.size());
    }
    const std::uint64_t a0 = allocsNow();
    benchmark::DoNotOptimize(body());
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocsNow() - a0);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

/**
 * Steady-state TDG construction: profiles built by streaming an
 * existing trace through one reusable TdgBuilder. The program-only
 * statics (loop forest, DFGs, Ball-Larus numberings) are built once,
 * as they are per workload in practice.
 */
void
BM_TdgConstruction(benchmark::State &state)
{
    const Program &prog = fixture().lw->program();
    const Trace &src = fixture().lw->tdg().trace();
    const TdgStatics statics(prog);
    TdgBuilder builder(statics);
    for (auto _ : state) {
        builder.begin(src);
        builder.feed(0, src.size());
        const TdgProfiles p = builder.finish();
        benchmark::DoNotOptimize(p.loopMap.loopOf.data());
        state.SetItemsProcessed(state.items_processed() +
                                src.size());
    }
}
BENCHMARK(BM_TdgConstruction)->Unit(benchmark::kMillisecond);

/**
 * The full fused front end as the design-space sweeps consume it:
 * interpret → annotate → core-context MStream, batch-by-batch into a
 * reused buffer with no intermediate Trace. Steady state must not
 * allocate.
 */
void
BM_FrontEndStreamed(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("conv");
    ProgramBuilder pb;
    SimMemory mem;
    std::vector<std::int64_t> args;
    spec.build(pb, mem, args);
    const Program prog = pb.build();
    TraceGenConfig cfg;
    cfg.maxInsts = 100'000;
    FrontEnd fe(prog, mem, cfg);
    MStream stream;
    const auto body = [&] {
        stream.clear();
        fe.run(args,
               [&](const DynInst *d, std::size_t n, DynId base) {
                   appendCoreBatch(d, n, base, stream);
               });
        return stream.size();
    };
    benchmark::DoNotOptimize(body()); // warm scratches and capacity
    for (auto _ : state) {
        benchmark::DoNotOptimize(body());
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
    const std::uint64_t a0 = allocsNow();
    benchmark::DoNotOptimize(body());
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocsNow() - a0);
}
BENCHMARK(BM_FrontEndStreamed)->Unit(benchmark::kMillisecond);

void
BM_PipelineTiming(benchmark::State &state)
{
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    const MStream &stream = fixture().baseline;
    for (auto _ : state) {
        const PipelineResult res = model.run(stream);
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
}
BENCHMARK(BM_PipelineTiming)->Unit(benchmark::kMillisecond);

/**
 * The streaming path: the baseline stream fed chunk-by-chunk through
 * one reusable TimingScratch. Steady state must not allocate.
 */
void
BM_PipelineTimingStreamed(benchmark::State &state)
{
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    const MStream &stream = fixture().baseline;
    TimingScratch ts;
    const auto body = [&] {
        model.beginRun(ts);
        for (std::size_t b = 0; b < stream.size(); b += kChunk) {
            model.runWindow(ts, stream, b,
                            std::min(b + kChunk, stream.size()),
                            false);
        }
        return ts.cycles();
    };
    benchmark::DoNotOptimize(body()); // warm the scratch buffers
    for (auto _ : state) {
        benchmark::DoNotOptimize(body());
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
    // Allocation check on a clean untimed body call (the benchmark
    // harness itself allocates a little between iterations).
    const std::uint64_t a0 = allocsNow();
    benchmark::DoNotOptimize(body());
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocsNow() - a0);
}
BENCHMARK(BM_PipelineTimingStreamed)->Unit(benchmark::kMillisecond);

void
BM_SimdTransform(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    const TdgAnalyzer an(tdg);
    for (auto _ : state) {
        std::uint64_t emitted = 0;
        SimdTransform tf(tdg, an);
        for (const Loop &loop : tdg.loops().loops()) {
            if (!tf.canTarget(loop.id))
                continue;
            const TransformOutput out =
                tf.transformLoop(loop.id,
                                 tdg.occurrencesOf(loop.id));
            emitted += out.stream.size();
        }
        state.SetItemsProcessed(state.items_processed() + emitted);
    }
}
BENCHMARK(BM_SimdTransform)->Unit(benchmark::kMillisecond);

/**
 * Streamed transform + timing for one BSA: every targetable loop is
 * rewritten and timed occurrence-by-occurrence through the scratch's
 * reusable window, exactly like BenchmarkModel::evaluateBsas().
 * Items = µDG instructions emitted and timed.
 */
void
BM_BsaEvalStreamed(benchmark::State &state, BsaKind kind)
{
    const Tdg &tdg = fixture().lw->tdg();
    const TdgAnalyzer an(tdg);
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    auto tf = makeTransform(kind, tdg, an);
    TimingScratch ts;
    for (auto _ : state) {
        std::uint64_t emitted = 0;
        tf->reset();
        for (const Loop &loop : tdg.loops().loops()) {
            if (!tf->canTarget(loop.id))
                continue;
            const auto occs = tdg.occurrencesOf(loop.id);
            if (occs.empty())
                continue;
            tf->beginLoop(loop.id);
            model.beginRun(ts);
            for (const LoopOccurrence *occ : occs) {
                ts.window.clear();
                tf->transformOccurrence(*occ, ts.window);
                model.runWindow(ts, ts.window, 0, ts.window.size(),
                                true);
                emitted += ts.window.size();
            }
            benchmark::DoNotOptimize(ts.cycles());
        }
        state.SetItemsProcessed(state.items_processed() + emitted);
    }
}
BENCHMARK_CAPTURE(BM_BsaEvalStreamed, simd, BsaKind::Simd)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BsaEvalStreamed, dpcgra, BsaKind::DpCgra)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BsaEvalStreamed, nsdf, BsaKind::Nsdf)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BsaEvalStreamed, tracep, BsaKind::Tracep)
    ->Unit(benchmark::kMillisecond);

void
BM_AnalyzerPasses(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    // Items = loops analyzed: the passes consume per-loop profiles,
    // not the raw trace, so instruction counts would overstate.
    const std::size_t loops = tdg.loops().numLoops();
    for (auto _ : state) {
        const TdgAnalyzer an(tdg);
        benchmark::DoNotOptimize(&an);
        state.SetItemsProcessed(state.items_processed() + loops);
    }
}
BENCHMARK(BM_AnalyzerPasses)->Unit(benchmark::kMillisecond);

/**
 * Cache-miss model construction: every baseline and (loop, BSA)
 * timing run executes. This is what each (workload, core) pair costs
 * a cold sweep. Items = trace instructions per construction.
 */
void
BM_ModelEvalCold(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    for (auto _ : state) {
        const BenchmarkModel bm(tdg, CoreKind::OOO2);
        benchmark::DoNotOptimize(bm.baseline().cycles);
        state.SetItemsProcessed(state.items_processed() +
                                tdg.trace().size());
    }
    const std::uint64_t a0 = allocsNow();
    {
        const BenchmarkModel bm(tdg, CoreKind::OOO2);
        benchmark::DoNotOptimize(bm.baseline().cycles);
    }
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocsNow() - a0);
}
BENCHMARK(BM_ModelEvalCold)->Unit(benchmark::kMillisecond);

/**
 * Warm model assembly from the in-RAM component tier: the steady
 * state of a design-space search revisiting a (workload, core)
 * pair. The first fetch computes and populates the RAM LRU; every
 * iteration after that assembles the model from shared component
 * tables — no timing run, no file I/O, and (steady state) only the
 * model object itself on the heap. The disk-warm path (component
 * files deserializing on a fresh process) is covered end-to-end by
 * scripts/warm_cache_check.sh; this bench is the tier above it.
 */
void
BM_ModelEvalWarm(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    const std::uint64_t budget = fixture().lw->maxInsts();
    const PipelineConfig cfg{.core = coreConfig(CoreKind::OOO2)};
    const auto body = [&] {
        const auto bm =
            buildModelCached(nullptr, "conv", tdg, budget, cfg);
        return bm->baseline().cycles;
    };
    benchmark::DoNotOptimize(body()); // populate the RAM tier
    for (auto _ : state) {
        benchmark::DoNotOptimize(body());
        state.SetItemsProcessed(state.items_processed() +
                                tdg.trace().size());
    }
    const std::uint64_t a0 = allocsNow();
    benchmark::DoNotOptimize(body());
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocsNow() - a0);
}
BENCHMARK(BM_ModelEvalWarm)->Unit(benchmark::kMillisecond);

/**
 * Scheduler-only recomposition: the per-point cost of the
 * design-space search once components are resident. One prepared
 * model, all 16 BSA subsets re-scheduled per iteration — no timing
 * run, no table build, only the region-selection DP over cached
 * tables. Items = trace instructions per configuration, the same
 * normalization as BM_ModelEvalCold, so committed(SchedulerOnly) /
 * committed(Cold) is directly the component-memoization speedup per
 * point (the search design targets >= 100x).
 */
void
BM_SearchSchedulerOnly(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    const std::uint64_t budget = fixture().lw->maxInsts();
    const PipelineConfig cfg{.core = coreConfig(CoreKind::OOO2)};
    const auto bm =
        buildModelCached(nullptr, "conv", tdg, budget, cfg);
    for (auto _ : state) {
        for (unsigned mask = 0; mask < 16; ++mask) {
            benchmark::DoNotOptimize(
                bm->evaluate(mask, SchedulerKind::Oracle).cycles);
            state.SetItemsProcessed(state.items_processed() +
                                    tdg.trace().size());
        }
    }
}
BENCHMARK(BM_SearchSchedulerOnly)->Unit(benchmark::kMillisecond);

/**
 * A full thousand-point design-space evaluation on one workload:
 * the default 16-core parametric grid x 16 BSA subsets x 4 area
 * budgets = 1024 points, composed from models prepared once (the
 * search steady state; preparation itself is the ~17 cold component
 * builds BM_ModelEvalCold prices). Items = points x trace
 * instructions, so the rate is configurations-throughput in the same
 * M-insts/s currency as the rest of the file.
 */
void
BM_SearchThousandPoints(benchmark::State &state)
{
    static const std::vector<WorkloadSpec> specs{
        findWorkload("conv")};
    SearchSpace space;
    space.areaBudgets = {0.0, 1.5, 2.5, 4.0};
    ThreadPool pool(1);
    DesignSearch search(space, specs);
    search.prepare(pool);
    const std::size_t insts = search.loadedInsts();
    std::vector<SearchPoint> points;
    for (auto _ : state) {
        points = search.run(pool);
        benchmark::DoNotOptimize(points.data());
        state.SetItemsProcessed(state.items_processed() +
                                points.size() * insts);
    }
    if (points.size() < 1000) {
        state.SkipWithError("expected >= 1000 search points");
        return;
    }
    state.counters["points"] = static_cast<double>(points.size());
}
BENCHMARK(BM_SearchThousandPoints)->Unit(benchmark::kMillisecond);

void
BM_CycleAccurateReference(benchmark::State &state)
{
    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    const MStream &stream = fixture().baseline;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(stream));
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
}
BENCHMARK(BM_CycleAccurateReference)->Unit(benchmark::kMillisecond);

/** Windowed reference simulation through one reusable scratch. */
void
BM_CycleAccurateReferenceStreamed(benchmark::State &state)
{
    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    const MStream &stream = fixture().baseline;
    RefSimScratch ss;
    const auto body = [&] {
        sim.begin(ss);
        for (std::size_t b = 0; b < stream.size(); b += kChunk)
            sim.feed(ss, stream, b,
                     std::min(b + kChunk, stream.size()));
        return sim.finishRun(ss, stream);
    };
    benchmark::DoNotOptimize(body()); // warm the scratch buffers
    for (auto _ : state) {
        benchmark::DoNotOptimize(body());
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
    const std::uint64_t a0 = allocsNow();
    benchmark::DoNotOptimize(body());
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocsNow() - a0);
}
BENCHMARK(BM_CycleAccurateReferenceStreamed)
    ->Unit(benchmark::kMillisecond);

/** The sub-grid the sweep benchmarks and the scaling guard share:
 *  2 workloads x {IO2, OOO2} x all 16 BSA subsets. */
SweepGrid
microSweepGrid()
{
    SweepGrid grid;
    grid.cores = {CoreKind::IO2, CoreKind::OOO2};
    return grid;
}

std::span<const WorkloadSpec>
microSweepWorkloads()
{
    static const std::vector<WorkloadSpec> specs{
        findWorkload("conv"), findWorkload("mm")};
    return specs;
}

/** One full sweep leg (models rebuilt from scratch) on `pool`,
 *  returning the rendered table — the byte-identity witness. The
 *  RAM component tier is cleared first: this bench prices the cold
 *  rebuild (every timing run executes), not the memoized assembly
 *  that BM_ModelEvalWarm / BM_SearchSchedulerOnly measure. */
std::string
sweepLeg(DesignSpaceSweep &sweep, ThreadPool &pool)
{
    MemoCache::global().clear();
    sweep.dropModels();
    sweep.prepare(pool);
    return renderSweepTable(sweep.run(pool));
}

/**
 * Serial-vs-parallel design-space sweep over a Fig-12-style
 * sub-grid on the sharded sweep driver (tdg/sweep.hh):
 * per-(workload, core) model construction followed by all 16
 * BSA-subset evaluations, on a pool of state.range(0) contexts.
 *
 * Every leg measures its own 1-thread reference (untimed) before the
 * timed parallel iterations, so the reported speedup_vs_1 is
 * self-contained — legs are order-independent and can be filtered
 * individually. The leg also fails unless the parallel table is
 * byte-identical to the serial one.
 */
void
BM_DesignSpaceSweep(benchmark::State &state)
{
    DesignSpaceSweep sweep(microSweepGrid(), microSweepWorkloads());
    ThreadPool serial(1);
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    sweep.load(serial);

    const auto s0 = std::chrono::steady_clock::now();
    const std::string serial_table = sweepLeg(sweep, serial);
    const double serial_secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - s0)
            .count();

    // Items = trace instructions re-modeled per leg: every shard
    // core rebuilds its per-workload model from the full trace.
    const std::size_t leg_insts =
        sweep.loadedInsts() * sweep.shardCores().size();
    double secs = 0;
    std::string table;
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        table = sweepLeg(sweep, pool);
        secs += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        state.SetItemsProcessed(state.items_processed() +
                                leg_insts);
    }
    if (table != serial_table) {
        state.SkipWithError("parallel sweep diverged from serial");
        return;
    }
    const double iters = static_cast<double>(state.iterations());
    const double per_iter = iters > 0 ? secs / iters : 0;
    const double sp = per_iter > 0 ? serial_secs / per_iter : 0;
    state.counters["speedup_vs_1"] = sp;
    state.counters["contexts"] = pool.effectiveContexts();
    std::printf("design-space sweep: %ld contexts requested "
                "(%u running) %.2fx vs serial\n",
                static_cast<long>(state.range(0)),
                pool.effectiveContexts(), sp);
}
BENCHMARK(BM_DesignSpaceSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// ---- Self-test (ctest -L perf-smoke) ------------------------------

bool
selfTestEquivalence()
{
    const MStream &stream = fixture().baseline;
    const std::size_t windows[] = {1, 7, 10000};
    bool ok = true;

    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    TimingScratch full_ts;
    const PipelineResult full = model.run(stream, full_ts, true);
    for (std::size_t w : windows) {
        TimingScratch ts;
        model.beginRun(ts, true);
        for (std::size_t b = 0; b < stream.size(); b += w)
            model.runWindow(ts, stream, b,
                            std::min(b + w, stream.size()), false);
        const PipelineResult res = model.finish(ts);
        const bool same = res.cycles == full.cycles &&
                          res.events == full.events &&
                          res.commitAt == full.commitAt;
        std::printf("self-test: pipeline window=%-5zu %s "
                    "(%llu vs %llu cycles)\n",
                    w, same ? "OK" : "MISMATCH",
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(full.cycles));
        ok = ok && same;
    }

    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    RefSimScratch full_ss;
    const Cycle ref_full = sim.run(stream, full_ss);
    for (std::size_t w : windows) {
        RefSimScratch ss;
        sim.begin(ss);
        for (std::size_t b = 0; b < stream.size(); b += w)
            sim.feed(ss, stream, b,
                     std::min(b + w, stream.size()));
        const Cycle got = sim.finishRun(ss, stream);
        const bool same = got == ref_full;
        std::printf("self-test: refsim   window=%-5zu %s "
                    "(%llu vs %llu cycles)\n",
                    w, same ? "OK" : "MISMATCH",
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(ref_full));
        ok = ok && same;
    }
    return ok;
}

bool
selfTestZeroAlloc()
{
    const MStream &stream = fixture().baseline;
    bool ok = true;

    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    TimingScratch ts;
    const auto time_body = [&] {
        model.beginRun(ts);
        for (std::size_t b = 0; b < stream.size(); b += kChunk)
            model.runWindow(ts, stream, b,
                            std::min(b + kChunk, stream.size()),
                            false);
        return ts.cycles();
    };
    time_body(); // warm
    std::uint64_t a0 = allocsNow();
    const Cycle c = time_body();
    std::uint64_t allocs = allocsNow() - a0;
    std::printf("self-test: pipeline steady-state allocs=%llu "
                "(%llu cycles) %s\n",
                static_cast<unsigned long long>(allocs),
                static_cast<unsigned long long>(c),
                allocs == 0 ? "OK" : "LEAKY");
    ok = ok && allocs == 0;

    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    RefSimScratch ss;
    const auto sim_body = [&] {
        sim.begin(ss);
        for (std::size_t b = 0; b < stream.size(); b += kChunk)
            sim.feed(ss, stream, b,
                     std::min(b + kChunk, stream.size()));
        return sim.finishRun(ss, stream);
    };
    sim_body(); // warm
    a0 = allocsNow();
    const Cycle rc = sim_body();
    allocs = allocsNow() - a0;
    std::printf("self-test: refsim   steady-state allocs=%llu "
                "(%llu cycles) %s\n",
                static_cast<unsigned long long>(allocs),
                static_cast<unsigned long long>(rc),
                allocs == 0 ? "OK" : "LEAKY");
    ok = ok && allocs == 0;
    return ok;
}

bool
sameDynInst(const DynInst &a, const DynInst &b)
{
    return a.sid == b.sid && a.op == b.op && a.memSize == b.memSize &&
           a.branchTaken == b.branchTaken &&
           a.mispredicted == b.mispredicted && a.memLat == b.memLat &&
           a.effAddr == b.effAddr && a.srcProd == b.srcProd &&
           a.memProd == b.memProd && a.value == b.value;
}

bool
sameMInst(const MInst &a, const MInst &b)
{
    return a.op == b.op && a.unit == b.unit && a.memLat == b.memLat &&
           a.mispredicted == b.mispredicted &&
           a.takenBranch == b.takenBranch && a.dep == b.dep &&
           a.memDep == b.memDep && a.sid == b.sid;
}

/**
 * The fused front-end contracts the steady-state benchmarks rely on:
 * repeat runs on the executed memory image are bit-identical, the
 * direct-to-MStream path equals the materialized core stream, and
 * the streaming loop performs zero steady-state allocations.
 */
bool
selfTestFrontEnd()
{
    const WorkloadSpec &spec = findWorkload("conv");
    ProgramBuilder pb;
    SimMemory mem;
    std::vector<std::int64_t> args;
    spec.build(pb, mem, args);
    const Program prog = pb.build();
    TraceGenConfig cfg;
    cfg.maxInsts = 100'000;
    FrontEnd fe(prog, mem, cfg);
    bool ok = true;

    Trace t1(&prog), t2(&prog);
    fe.run(args, [&](const DynInst *d, std::size_t n, DynId) {
        t1.append(d, n);
    });
    fe.run(args, [&](const DynInst *d, std::size_t n, DynId) {
        t2.append(d, n);
    });
    bool same = t1.size() == t2.size() && !t1.empty();
    for (DynId i = 0; same && i < t1.size(); ++i)
        same = sameDynInst(t1[i], t2[i]);
    std::printf("self-test: frontend repeat-run  %s (%zu insts)\n",
                same ? "OK" : "MISMATCH", t1.size());
    ok = ok && same;

    MStream streamed;
    fe.run(args, [&](const DynInst *d, std::size_t n, DynId base) {
        appendCoreBatch(d, n, base, streamed);
    });
    const MStream ref = buildCoreStream(t1);
    same = streamed.size() == ref.size();
    for (std::size_t i = 0; same && i < ref.size(); ++i)
        same = sameMInst(streamed[i], ref[i]);
    std::printf("self-test: frontend mstream     %s (%zu minsts)\n",
                same ? "OK" : "MISMATCH", streamed.size());
    ok = ok && same;

    const auto body = [&] {
        streamed.clear();
        fe.run(args,
               [&](const DynInst *d, std::size_t n, DynId base) {
                   appendCoreBatch(d, n, base, streamed);
               });
        return streamed.size();
    };
    body(); // warm
    const std::uint64_t a0 = allocsNow();
    const std::size_t sz = body();
    const std::uint64_t allocs = allocsNow() - a0;
    std::printf("self-test: frontend steady-state allocs=%llu "
                "(%zu minsts) %s\n",
                static_cast<unsigned long long>(allocs), sz,
                allocs == 0 ? "OK" : "LEAKY");
    ok = ok && allocs == 0;
    return ok;
}

int
runSelfTest()
{
    const bool equiv = selfTestEquivalence();
    const bool zeroalloc = selfTestZeroAlloc();
    const bool frontend = selfTestFrontEnd();
    std::printf("self-test: %s\n",
                equiv && zeroalloc && frontend ? "PASS" : "FAIL");
    return equiv && zeroalloc && frontend ? 0 : 1;
}

// ---- Perf-regression guard (ctest -L perf-smoke) ------------------

/** Whole committed JSON, or empty if the file is absent (a fresh
 *  checkout bootstrapping its first baseline). */
std::string
committedJson(const char *path)
{
    std::FILE *f = std::fopen(path, "r");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

/** minsts_per_sec recorded for `name` in the committed JSON, or -1
 *  when the key is not present. */
double
committedRateIn(const std::string &text, const char *name)
{
    const std::string key = std::string("\"") + name + "\"";
    const std::size_t at = text.find(key);
    if (at == std::string::npos)
        return -1;
    const std::string field = "\"minsts_per_sec\":";
    const std::size_t fat = text.find(field, at);
    if (fat == std::string::npos)
        return -1;
    return std::strtod(text.c_str() + fat + field.size(), nullptr);
}

/** Best observed M-insts/s over a few repetitions of `body()`. */
template <class Body>
double
measureRate(Body &&body)
{
    body(); // warm
    double best = 0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t items = body();
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (secs > 0)
            best = std::max(best, static_cast<double>(items) / secs /
                                      1e6);
    }
    return best;
}

/**
 * Compare the two front-end throughputs against the committed
 * BENCH_framework.json; fail (exit 1) on a >30% regression.
 * PRISM_SKIP_PERF_CHECK=1 opts out (for heavily loaded or
 * instrumented builds — sanitizer CI sets it).
 */
int
runPerfCheck(const char *json_path)
{
    if (std::getenv("PRISM_SKIP_PERF_CHECK")) {
        std::printf("perf-check: skipped (PRISM_SKIP_PERF_CHECK)\n");
        return 0;
    }
    constexpr double kAllowed = 0.7; // fail below 70% of committed

    const std::string committed = committedJson(json_path);
    if (committed.empty()) {
        std::printf("perf-check: %s absent — bootstrap run, nothing "
                    "to compare against\n",
                    json_path);
        return 0;
    }

    const WorkloadSpec &spec = findWorkload("conv");
    ProgramBuilder pb;
    SimMemory mem;
    std::vector<std::int64_t> args;
    spec.build(pb, mem, args);
    const Program prog = pb.build();
    TraceGenConfig cfg;
    cfg.maxInsts = 100'000;
    FrontEnd fe(prog, mem, cfg);

    bool ok = true;
    const auto check = [&](const char *name, double measured) {
        const double want = committedRateIn(committed, name);
        if (want <= 0) {
            // The file exists but this key vanished from it: that is
            // a lost baseline (e.g. a partial regeneration), not a
            // bootstrap — fail so the gap can't hide a regression.
            std::printf("perf-check: %-20s MISSING from %s — "
                        "regenerate the committed baselines\n",
                        name, json_path);
            ok = false;
            return;
        }
        const bool pass = measured >= kAllowed * want;
        std::printf("perf-check: %-20s %7.2f M-insts/s vs committed "
                    "%7.2f (floor %.2f) %s\n",
                    name, measured, want, kAllowed * want,
                    pass ? "OK" : "REGRESSION");
        ok = ok && pass;
    };

    Trace trace(&prog);
    check("BM_TraceGeneration", measureRate([&] {
              trace.clear();
              fe.run(args,
                     [&](const DynInst *d, std::size_t n, DynId) {
                         trace.append(d, n);
                     });
              return trace.size();
          }));

    const TdgStatics statics(prog);
    TdgBuilder builder(statics);
    check("BM_TdgConstruction", measureRate([&] {
              builder.begin(trace);
              builder.feed(0, trace.size());
              const TdgProfiles p = builder.finish();
              benchmark::DoNotOptimize(p.loopMap.loopOf.size());
              return trace.size();
          }));

    // Model-evaluation throughput, cold (all timing runs) and warm
    // (tables deserialized from the artifact cache).
    const Tdg tdg(prog, std::move(trace));
    check("BM_ModelEvalCold", measureRate([&] {
              const BenchmarkModel bm(tdg, CoreKind::OOO2);
              benchmark::DoNotOptimize(bm.baseline().cycles);
              return tdg.trace().size();
          }));
    {
        const PipelineConfig pcfg{.core = coreConfig(CoreKind::OOO2)};
        // Populate the RAM tier once; the timed reps assemble from
        // shared components only (the search engine's steady state).
        benchmark::DoNotOptimize(
            buildModelCached(nullptr, "conv", tdg, cfg.maxInsts,
                             pcfg)
                ->baseline()
                .cycles);
        check("BM_ModelEvalWarm", measureRate([&] {
                  // A warm assembly takes ~1 µs; a single one per
                  // timed rep would measure clock granularity, not
                  // the build. Batch enough to be comparable with
                  // the committed many-iteration benchmark number.
                  constexpr std::size_t kBatch = 50;
                  for (std::size_t k = 0; k < kBatch; ++k) {
                      const auto bm = buildModelCached(
                          nullptr, "conv", tdg, cfg.maxInsts, pcfg);
                      benchmark::DoNotOptimize(bm->baseline().cycles);
                  }
                  return tdg.trace().size() * kBatch;
              }));

        // Scheduler-only recomposition (the search's per-point cost):
        // all 16 subsets against one prepared model per rep.
        const auto bm = buildModelCached(nullptr, "conv", tdg,
                                         cfg.maxInsts, pcfg);
        check("BM_SearchSchedulerOnly", measureRate([&] {
                  for (unsigned mask = 0; mask < 16; ++mask) {
                      benchmark::DoNotOptimize(
                          bm->evaluate(mask, SchedulerKind::Oracle)
                              .cycles);
                  }
                  return tdg.trace().size() * 16;
              }));
    }

    // Event-driven reference-simulator throughput, full-stream and
    // windowed: the expensive engine behind sampled cross-validation
    // must stay fast enough to validate against.
    {
        const MStream stream = buildCoreStream(tdg.trace());
        const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
        check("BM_CycleAccurateReference", measureRate([&] {
                  benchmark::DoNotOptimize(sim.run(stream));
                  return stream.size();
              }));
        RefSimScratch ss;
        check("BM_CycleAccurateReferenceStreamed",
              measureRate([&] {
                  sim.begin(ss);
                  for (std::size_t b = 0; b < stream.size();
                       b += kChunk)
                      sim.feed(ss, stream, b,
                               std::min(b + kChunk,
                                        stream.size()));
                  benchmark::DoNotOptimize(
                      sim.finishRun(ss, stream));
                  return stream.size();
              }));
    }

    std::printf("perf-check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

// ---- Scaling guard (ctest scaling_guard) ---------------------------

/**
 * Assert the parallel sweep actually scales: run the micro sweep on
 * 1 and on 4 contexts, require byte-identical tables, and fail
 * unless the 4-context leg is >= 2.5x faster. Skipped (exit 0, with
 * a message) when PRISM_SKIP_PERF_CHECK is set or the host cannot
 * run 4 contexts concurrently — a wall-clock scaling measurement on
 * a 1-CPU container would only measure the scheduler.
 */
int
runScalingCheck()
{
    if (std::getenv("PRISM_SKIP_PERF_CHECK")) {
        std::printf(
            "scaling-guard: skipped (PRISM_SKIP_PERF_CHECK)\n");
        return 0;
    }
    const unsigned avail = availableParallelism();
    if (avail < 4) {
        std::printf("scaling-guard: skipped (%u CPU(s) available; "
                    "need >= 4 for a meaningful measurement)\n",
                    avail);
        return 0;
    }
    constexpr double kFloor = 2.5;

    DesignSpaceSweep sweep(microSweepGrid(), microSweepWorkloads());
    ThreadPool serial(1);
    ThreadPool pool(4);
    sweep.load(serial);

    // Best-of-2 per leg: the guard asserts capability, not an
    // average, so one noisy leg must not fail CI.
    const auto best_of = [&](ThreadPool &p, std::string &table) {
        double best = -1;
        for (int rep = 0; rep < 2; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            table = sweepLeg(sweep, p);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            best = best < 0 ? secs : std::min(best, secs);
        }
        return best;
    };
    std::string serial_table;
    std::string par_table;
    const double serial_s = best_of(serial, serial_table);
    const double par_s = best_of(pool, par_table);

    if (par_table != serial_table) {
        std::printf("scaling-guard: FAIL (parallel sweep table "
                    "diverged from serial)\n");
        return 1;
    }
    const double sp = par_s > 0 ? serial_s / par_s : 0;
    const bool pass = sp >= kFloor;
    std::printf("scaling-guard: serial %.2fs, 4 contexts %.2fs -> "
                "%.2fx (floor %.1fx) %s\n",
                serial_s, par_s, sp, kFloor,
                pass ? "OK" : "FAIL");
    std::printf("scaling-guard: tables byte-identical across thread "
                "counts: yes\n");
    return pass ? 0 : 1;
}

// ---- JSON report ---------------------------------------------------

/** Console output plus result collection for BENCH_framework.json. */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Item
    {
        std::string name;
        double wallMs = 0;
        double minstsPerSec = 0;
        double allocsPerIter = -1; ///< -1: not measured
        double speedupVs1 = -1;    ///< -1: not a parallel leg
    };
    std::vector<Item> items;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const Run &r : runs) {
            if (r.error_occurred || r.run_type != Run::RT_Iteration)
                continue;
            Item it;
            it.name = r.benchmark_name();
            if (r.iterations > 0) {
                it.wallMs = r.real_accumulated_time * 1e3 /
                            static_cast<double>(r.iterations);
            }
            const auto ips = r.counters.find("items_per_second");
            if (ips != r.counters.end())
                it.minstsPerSec = ips->second.value / 1e6;
            const auto al = r.counters.find("allocs_per_iter");
            if (al != r.counters.end())
                it.allocsPerIter = al->second.value;
            const auto sp = r.counters.find("speedup_vs_1");
            if (sp != r.counters.end())
                it.speedupVs1 = sp->second.value;
            items.push_back(std::move(it));
        }
    }
};

void
writeJson(const CollectingReporter &rep, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < rep.items.size(); ++i) {
        const auto &it = rep.items[i];
        std::fprintf(f,
                     "  \"%s\": {\"wall_ms\": %.3f, "
                     "\"minsts_per_sec\": %.2f",
                     it.name.c_str(), it.wallMs, it.minstsPerSec);
        if (it.allocsPerIter >= 0)
            std::fprintf(f, ", \"allocs_per_iter\": %.1f",
                         it.allocsPerIter);
        if (it.speedupVs1 >= 0)
            std::fprintf(f, ", \"speedup_vs_1\": %.3f",
                         it.speedupVs1);
        std::fprintf(f, "}%s\n",
                     i + 1 < rep.items.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu benchmarks)\n", path,
                rep.items.size());
}

} // namespace
} // namespace prism

int
main(int argc, char **argv)
{
    bool filtered = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--self-test") == 0)
            return prism::runSelfTest();
        if (std::strcmp(argv[i], "--scaling-check") == 0)
            return prism::runScalingCheck();
        if (std::strncmp(argv[i], "--perf-check=", 13) == 0)
            return prism::runPerfCheck(argv[i] + 13);
        if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0)
            filtered = true;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    prism::CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (filtered) {
        // A filtered run would overwrite the committed baseline with
        // a partial file (and silently drop every other benchmark's
        // entry, including speedup_vs_1); only full runs regenerate.
        std::printf("filtered run: not writing "
                    "BENCH_framework.json\n");
    } else {
        prism::writeJson(reporter, "BENCH_framework.json");
    }
    benchmark::Shutdown();
    return 0;
}
