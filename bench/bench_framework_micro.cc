/**
 * @file
 * google-benchmark microbenchmarks of the framework itself: trace
 * generation, TDG construction, µDG timing, transform application,
 * and the discrete-event reference simulator — the practicality
 * argument of Section 2 (a TDG model is cheap enough for large
 * design-space exploration).
 */

#include <benchmark/benchmark.h>

#include "common/thread_pool.hh"
#include "sim/trace_gen.hh"
#include "tdg/analyzer.hh"
#include "tdg/bsa/bsa.hh"
#include "tdg/constructor.hh"
#include "tdg/exocore.hh"
#include "tdg/reference/ref_models.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

/** Shared fixture state: one mid-size workload, loaded once. */
struct Fixture
{
    std::unique_ptr<LoadedWorkload> lw;
    MStream baseline;

    Fixture()
    {
        lw = LoadedWorkload::load(findWorkload("conv"));
        baseline = buildCoreStream(lw->tdg().trace());
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("conv");
    for (auto _ : state) {
        ProgramBuilder pb;
        SimMemory mem;
        std::vector<std::int64_t> args;
        spec.build(pb, mem, args);
        const Program prog = pb.build();
        Trace trace(&prog);
        TraceGenConfig cfg;
        cfg.maxInsts = 100'000;
        generateTrace(prog, mem, args, trace, cfg);
        benchmark::DoNotOptimize(trace.size());
        state.SetItemsProcessed(state.items_processed() +
                                trace.size());
    }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_TdgConstruction(benchmark::State &state)
{
    const Program &prog = fixture().lw->program();
    const Trace &src = fixture().lw->tdg().trace();
    for (auto _ : state) {
        Trace copy(&prog);
        copy.reserve(src.size());
        for (const DynInst &di : src.insts())
            copy.push(di);
        const Tdg tdg(prog, std::move(copy));
        benchmark::DoNotOptimize(tdg.loops().numLoops());
        state.SetItemsProcessed(state.items_processed() +
                                src.size());
    }
}
BENCHMARK(BM_TdgConstruction)->Unit(benchmark::kMillisecond);

void
BM_PipelineTiming(benchmark::State &state)
{
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    const MStream &stream = fixture().baseline;
    for (auto _ : state) {
        const PipelineResult res = model.run(stream);
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
}
BENCHMARK(BM_PipelineTiming)->Unit(benchmark::kMillisecond);

void
BM_SimdTransform(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    const TdgAnalyzer an(tdg);
    for (auto _ : state) {
        SimdTransform tf(tdg, an);
        for (const Loop &loop : tdg.loops().loops()) {
            if (!tf.canTarget(loop.id))
                continue;
            const TransformOutput out =
                tf.transformLoop(loop.id,
                                 tdg.occurrencesOf(loop.id));
            benchmark::DoNotOptimize(out.stream.size());
        }
    }
}
BENCHMARK(BM_SimdTransform)->Unit(benchmark::kMillisecond);

void
BM_AnalyzerPasses(benchmark::State &state)
{
    const Tdg &tdg = fixture().lw->tdg();
    for (auto _ : state) {
        const TdgAnalyzer an(tdg);
        benchmark::DoNotOptimize(&an);
    }
}
BENCHMARK(BM_AnalyzerPasses)->Unit(benchmark::kMillisecond);

void
BM_CycleAccurateReference(benchmark::State &state)
{
    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    const MStream &stream = fixture().baseline;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(stream));
        state.SetItemsProcessed(state.items_processed() +
                                stream.size());
    }
}
BENCHMARK(BM_CycleAccurateReference)->Unit(benchmark::kMillisecond);

/**
 * Serial-vs-parallel design-space sweep over a Fig-12-style
 * sub-grid: per-(workload, core) model construction followed by all
 * 16 BSA-subset evaluations, run on a thread pool of state.range(0)
 * threads. The Arg(1)/Arg(N) ratio is the exploration engine's
 * speedup on this machine.
 */
void
BM_DesignSpaceSweep(benchmark::State &state)
{
    static const std::unique_ptr<LoadedWorkload> wl2 =
        LoadedWorkload::load(findWorkload("mm"));
    const std::array<const Tdg *, 2> tdgs{&fixture().lw->tdg(),
                                          &wl2->tdg()};
    const std::array<CoreKind, 2> cores{CoreKind::IO2,
                                        CoreKind::OOO2};
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        // Mutate phase: one model per (workload, core) pair.
        std::vector<std::unique_ptr<BenchmarkModel>> models(
            tdgs.size() * cores.size());
        pool.parallelFor(models.size(), [&](std::size_t i) {
            models[i] = std::make_unique<BenchmarkModel>(
                *tdgs[i / cores.size()], cores[i % cores.size()]);
        });
        // Read phase: the 16-subset grid per model.
        std::vector<double> speedup(models.size() * 16);
        pool.parallelFor(speedup.size(), [&](std::size_t i) {
            const BenchmarkModel &bm = *models[i / 16];
            const ExoResult res =
                bm.evaluate(static_cast<unsigned>(i % 16));
            speedup[i] =
                static_cast<double>(bm.baseline().cycles) /
                static_cast<double>(res.cycles);
        });
        benchmark::DoNotOptimize(speedup.data());
        state.SetItemsProcessed(state.items_processed() +
                                speedup.size());
    }
}
BENCHMARK(BM_DesignSpaceSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace
} // namespace prism

BENCHMARK_MAIN();
