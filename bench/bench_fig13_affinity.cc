/**
 * @file
 * Regenerates Figure 13: per-benchmark execution-time and energy
 * breakdowns of an OOO2-based full ExoCore, normalized to the OOO2
 * core alone, stacked by execution unit (GPP / SIMD / DP-CGRA /
 * NS-DF / Trace-P). Also reports the paper's aggregate claim that
 * only ~16% of original execution cycles go un-accelerated.
 */

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Figure 13: Per-Benchmark Behavior and Region Affinity "
           "(OOO2 ExoCore, baseline = OOO2 alone)");

    auto suite = loadSuite();
    ThreadPool pool(opt.threads);
    constexpr std::array<CoreKind, 1> kCores = {CoreKind::OOO2};
    prepareEntries(pool, suite, kCores);

    Table t({"benchmark", "time", "GPP", "SIMD", "DP-CGRA", "NS-DF",
             "Trace-P", "energy"});
    std::vector<double> unaccel;
    std::vector<double> rel_time;
    std::vector<double> rel_energy;

    for (Entry &e : suite) {
        BenchmarkModel &bm = e.model(CoreKind::OOO2);
        const ExoResult exo = bm.evaluate(kFullBsaMask);
        const ExoResult &base = bm.baseline();

        const double time = static_cast<double>(exo.cycles) /
                            static_cast<double>(base.cycles);
        const double energy = exo.energy / base.energy;
        rel_time.push_back(time);
        rel_energy.push_back(energy);
        // Fraction of *original* cycles not offloaded: GPP cycles of
        // the ExoCore over the baseline cycles.
        unaccel.push_back(
            static_cast<double>(exo.unitCycles[0]) /
            static_cast<double>(base.cycles));

        std::vector<std::string> row{std::string(e.name()),
                                     fmt(time, 2)};
        for (int u = 0; u < kNumUnits; ++u)
            row.push_back(fmtPct(exo.unitCycleFraction(u), 0));
        row.push_back(fmt(energy, 2));
        t.addRow(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("(unit columns: share of the ExoCore's execution "
                "cycles on each unit)\n");

    std::printf("\nMean un-accelerated share of original cycles: %s "
                "(paper: ~16%%)\n",
                fmtPct(mean(unaccel), 0).c_str());
    std::printf("Geomean relative time %s, relative energy %s\n",
                fmt(geomean(rel_time), 2).c_str(),
                fmt(geomean(rel_energy), 2).c_str());
    printCacheSummary();
    return 0;
}
