/**
 * @file
 * Ablation study of the BSA hardware parameters (the design choices
 * recorded in DESIGN.md, and the "varying core and accelerator
 * parameters" extension the paper's Section 5.5 calls out): sweeps
 * the NS-DF writeback-bus width and operand window, the Trace-P
 * window, and the DP-CGRA issue width and configuration cost, and
 * reports the resulting single-BSA ExoCore benefit.
 */

#include <functional>

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

namespace
{

/** Geomean single-BSA speedup/energy on OOO2 over some workloads. */
PerfEnergy
evalWith(std::vector<Entry> &entries, BsaKind bsa,
         const std::function<void(PipelineConfig &)> &tweak)
{
    std::vector<double> perf;
    std::vector<double> energy;
    for (Entry &e : entries) {
        PipelineConfig cfg;
        cfg.core = coreConfig(CoreKind::OOO2);
        tweak(cfg);
        const BenchmarkModel bm(e.tdg(), CoreKind::OOO2, cfg);
        const ExoResult res = bm.evaluate(bsaBit(bsa));
        perf.push_back(static_cast<double>(bm.baseline().cycles) /
                       static_cast<double>(res.cycles));
        energy.push_back(bm.baseline().energy / res.energy);
    }
    return {geomean(perf), geomean(energy)};
}

std::vector<Entry>
pick(const std::vector<const char *> &names)
{
    std::vector<Entry> out;
    for (const WorkloadSpec &spec : allWorkloads()) {
        for (const char *n : names) {
            if (spec.name == std::string(n))
                out.emplace_back(spec);
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    banner("Ablation: BSA hardware parameters (OOO2 host, geomean "
           "single-BSA speedup / energy-efficiency)");

    // NS-DF knobs on loops it targets well.
    auto nsdf_set = pick({"cutcp", "mm", "tpacf", "445.gobmk"});
    {
        std::printf("\n-- NS-DF writeback-bus width --\n");
        Table t({"wb bus", "speedup", "energy eff."});
        for (unsigned wb : {1u, 2u, 3u, 4u, 6u}) {
            const PerfEnergy pe = evalWith(
                nsdf_set, BsaKind::Nsdf,
                [wb](PipelineConfig &c) { c.nsdf.wbBusWidth = wb; });
            t.addRow({std::to_string(wb), fmt(pe.perf, 2),
                      fmt(pe.energy, 2)});
        }
        std::printf("%s", t.render().c_str());
    }
    {
        std::printf("\n-- NS-DF operand window --\n");
        Table t({"window", "speedup", "energy eff."});
        for (unsigned w : {16u, 32u, 64u, 128u, 256u}) {
            const PerfEnergy pe = evalWith(
                nsdf_set, BsaKind::Nsdf,
                [w](PipelineConfig &c) { c.nsdf.window = w; });
            t.addRow({std::to_string(w), fmt(pe.perf, 2),
                      fmt(pe.energy, 2)});
        }
        std::printf("%s", t.render().c_str());
    }

    // Trace-P window on hot-trace loops.
    auto tracep_set = pick({"tpch1", "vr", "444.namd"});
    {
        std::printf("\n-- Trace-P operand window --\n");
        Table t({"window", "speedup", "energy eff."});
        for (unsigned w : {16u, 32u, 64u, 128u}) {
            const PerfEnergy pe = evalWith(
                tracep_set, BsaKind::Tracep,
                [w](PipelineConfig &c) { c.tracep.window = w; });
            t.addRow({std::to_string(w), fmt(pe.perf, 2),
                      fmt(pe.energy, 2)});
        }
        std::printf("%s", t.render().c_str());
    }

    // DP-CGRA knobs on data-parallel loops.
    auto cgra_set = pick({"conv", "mm", "kmeans", "h263enc"});
    {
        std::printf("\n-- DP-CGRA issue width --\n");
        Table t({"issue", "speedup", "energy eff."});
        for (unsigned iw : {2u, 4u, 8u, 16u}) {
            const PerfEnergy pe = evalWith(
                cgra_set, BsaKind::DpCgra,
                [iw](PipelineConfig &c) {
                    c.cgra.issueWidth = iw;
                });
            t.addRow({std::to_string(iw), fmt(pe.perf, 2),
                      fmt(pe.energy, 2)});
        }
        std::printf("%s", t.render().c_str());
    }
    {
        std::printf("\n-- DP-CGRA vector output-bus width --\n");
        Table t({"wb bus", "speedup", "energy eff."});
        for (unsigned wb : {1u, 2u, 4u, 8u}) {
            const PerfEnergy pe = evalWith(
                cgra_set, BsaKind::DpCgra,
                [wb](PipelineConfig &c) { c.cgra.wbBusWidth = wb; });
            t.addRow({std::to_string(wb), fmt(pe.perf, 2),
                      fmt(pe.energy, 2)});
        }
        std::printf("%s", t.render().c_str());
    }
    printCacheSummary();
    return 0;
}
