/**
 * @file
 * Regenerates Figure 10: geometric-mean performance/energy tradeoff
 * curves across all workloads. Each curve is one accelerator
 * configuration (general core only, one single BSA, or the full
 * ExoCore); each point on a curve is one general core (IO2, OOO2,
 * OOO4, OOO6). All values are relative to the IO2 core alone.
 */

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Figure 10: ExoCore Tradeoffs Across All Workloads");

    ThreadPool pool(opt.threads);
    auto suite = loadSuite();
    Stopwatch sw;
    prepareEntries(pool, suite, kTable4Cores);

    struct Line
    {
        const char *label;
        unsigned mask;
    };
    const Line lines[] = {
        {"Gen. Core Only", 0},
        {"SIMD", bsaBit(BsaKind::Simd)},
        {"DP-CGRA", bsaBit(BsaKind::DpCgra)},
        {"NS-DF", bsaBit(BsaKind::Nsdf)},
        {"TRACE-P", bsaBit(BsaKind::Tracep)},
        {"ExoCore", kFullBsaMask},
    };

    // One task per (configuration line, core); results land by
    // index, so the rendered table is identical for any thread count.
    const std::size_t n_cores = kTable4Cores.size();
    const std::size_t n_combos = std::size(lines) * n_cores;
    const std::vector<PerfEnergy> combo =
        parallelMapIndex(pool, n_combos, [&](std::size_t i) {
            const Line &line = lines[i / n_cores];
            const CoreKind core = kTable4Cores[i % n_cores];
            std::vector<double> perf;
            std::vector<double> energy;
            for (const Entry &e : suite) {
                const PerfEnergy pe =
                    evalConfig(e, core, line.mask, CoreKind::IO2);
                perf.push_back(pe.perf);
                energy.push_back(pe.energy);
            }
            PerfEnergy pe;
            pe.perf = geomean(perf);
            pe.energy = geomean(energy);
            return pe;
        });
    std::printf("evaluated %zu (config, core) combos in %.1fs "
                "(%u threads)\n",
                n_combos, sw.seconds(), pool.size());
    printCacheSummary();

    Table t({"config", "core", "rel. performance", "rel. energy"});
    std::map<std::pair<std::string, CoreKind>, PerfEnergy> results;
    for (std::size_t i = 0; i < n_combos; ++i) {
        const Line &line = lines[i / n_cores];
        const CoreKind core = kTable4Cores[i % n_cores];
        const PerfEnergy &pe = combo[i];
        results[{line.label, core}] = pe;
        t.addRow({line.label, coreConfig(core).name,
                  fmt(pe.perf, 2), fmt(pe.energy, 2)});
        if (i % n_cores == n_cores - 1)
            t.addSeparator();
    }
    std::printf("%s", t.render().c_str());

    // Headline claims of Section 5.1.
    const auto &exo2 = results[{"ExoCore", CoreKind::OOO2}];
    const auto &gpp2 = results[{"Gen. Core Only", CoreKind::OOO2}];
    const auto &exo6 = results[{"ExoCore", CoreKind::OOO6}];
    const auto &gpp6 = results[{"Gen. Core Only", CoreKind::OOO6}];
    std::printf("\nOOO2 ExoCore vs OOO2 core : %s performance, "
                "%s energy benefit (paper: ~2.4x / 2.4x)\n",
                fmtX(exo2.perf / gpp2.perf).c_str(),
                fmtX(gpp2.energy / exo2.energy).c_str());
    std::printf("OOO6 ExoCore vs OOO6 core : %s performance, "
                "%s energy benefit (paper: up to 1.9x / 2.4x)\n",
                fmtX(exo6.perf / gpp6.perf).c_str(),
                fmtX(gpp6.energy / exo6.energy).c_str());
    return 0;
}
