/**
 * @file
 * Sampled cross-validation sweep: for every shipped workload,
 * estimate the reference-simulator CPI by stratified sampling
 * (tdg/reference/sampled_validate.hh) and compare against the
 * full-trace reference simulation. Prints one row per (workload,
 * core) with the estimate, its confidence interval, the true value
 * and the coverage, then enforces the sampling contract:
 *
 *   - the reported CI contains the full-trace CPI (every row),
 *   - coverage <= 10% of the trace (every row),
 *   - whenever a row's CI claims <= 1% relative half-width, the
 *     actual error is <= 1% — the interval is honest,
 *   - the median row claims <= 1% half-width, so the estimator
 *     cannot drift into uselessly wide intervals. (The rows above
 *     1% are those where the measured model-decomposition bias —
 *     folded into the CI as a deterministic floor — is itself the
 *     dominant term; the interval is honest about it.)
 *
 * Registered as the `sampled_validation` ctest. Set
 * PRISM_SKIP_PERF_CHECK=1 to report without enforcing (e.g. under
 * sanitizers, where nothing here is timing-dependent but runtime
 * budgets are tight — use --max-insts to shrink instead).
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "tdg/reference/sampled_validate.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Sampled cross-validation (reference simulator)");

    ThreadPool pool(opt.threads);
    Stopwatch sw;
    const bool enforce =
        std::getenv("PRISM_SKIP_PERF_CHECK") == nullptr;

    Table t({"Workload", "Core", "Full CPI", "Sampled", "CI +/-",
             "Err", "Cover", "Units"});
    unsigned failures = 0;
    std::size_t rows = 0;
    std::size_t tight_rows = 0;
    for (const WorkloadSpec &spec : allWorkloads()) {
        const auto lw = LoadedWorkload::load(spec);
        const Trace &trace = lw->tdg().trace();
        const MStream full = buildCoreStream(trace);
        for (CoreKind kind : {CoreKind::IO2, CoreKind::OOO2}) {
            const CoreConfig core = coreConfig(kind);
            RefSimScratch ss;
            const Cycle cycles = CycleCoreSim(core).run(full, ss);
            const double full_cpi =
                static_cast<double>(cycles) /
                static_cast<double>(full.size());
            const SampledCpi est = sampledCpiEstimate(
                trace, core, SampleConfig{}, &pool);

            const double err =
                std::abs(est.cpi - full_cpi) / full_cpi;
            const bool in_ci = full_cpi >= est.ciLow &&
                               full_cpi <= est.ciHigh;
            const bool tight = est.relHalfWidth <= 0.01;
            if (tight)
                ++tight_rows;
            const bool ok = in_ci && est.coverage <= 0.10 &&
                            (!tight || err <= 0.01);
            if (!ok)
                ++failures;
            ++rows;
            char buf[64];
            std::vector<std::string> cells;
            cells.emplace_back(spec.name);
            cells.emplace_back(core.name);
            std::snprintf(buf, sizeof buf, "%.4f", full_cpi);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.4f", est.cpi);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.4f",
                          (est.ciHigh - est.ciLow) / 2);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.2f%%%s", err * 100,
                          ok ? "" : " !!");
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.1f%%",
                          est.coverage * 100);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%zu",
                          est.unitsSimulated);
            cells.emplace_back(buf);
            t.addRow(std::move(cells));
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("%zu rows validated in %.1fs (%u threads); "
                "%zu/%zu rows claim <= 1%% half-width\n",
                rows, sw.seconds(), pool.size(), tight_rows, rows);

    // Precision attainment: if too few rows reach the 1% claim, the
    // intervals are honest but useless — fail the suite.
    const bool precise = tight_rows * 2 >= rows;
    if (failures == 0 && precise) {
        std::printf("sampled-validation: PASS (CI contains full "
                    "CPI, honest <= 1%% claims, coverage <= "
                    "10%%)\n");
        return 0;
    }
    if (failures != 0)
        std::printf("sampled-validation: %u/%zu rows outside the "
                    "sampling contract\n",
                    failures, rows);
    if (!precise)
        std::printf("sampled-validation: only %zu/%zu rows reach "
                    "<= 1%% half-width (need a majority)\n",
                    tight_rows, rows);
    if (!enforce) {
        std::printf("sampled-validation: not enforced "
                    "(PRISM_SKIP_PERF_CHECK)\n");
        return 0;
    }
    return 1;
}
