/**
 * @file
 * Regenerates Figure 15: Oracle versus Amdahl-Tree scheduler on the
 * challenging Mediabench applications (multi-BSA within a single
 * application), with per-unit breakdowns, plus the paper's aggregate
 * comparison over all workloads (Amdahl-Tree: ~1.21x geomean energy
 * efficiency, ~0.89x of the Oracle's performance).
 */

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Figure 15: Oracle versus Amdahl Tree Scheduler "
           "(OOO2 ExoCore, baseline = OOO2 alone)");

    auto suite = loadSuite();
    ThreadPool pool(opt.threads);
    constexpr std::array<CoreKind, 1> kCores = {CoreKind::OOO2};
    prepareEntries(pool, suite, kCores);
    const char *shown[] = {"cjpeg-1", "djpeg-1", "gsmdecode",
                           "gsmencode", "jpg2000dec", "jpg2000enc",
                           "mpeg2dec", "mpeg2enc"};

    Table t({"benchmark", "sched", "time", "GPP", "SIMD", "DP-CGRA",
             "NS-DF", "Trace-P", "energy"});
    for (const char *name : shown) {
        for (SchedulerKind sched : {SchedulerKind::Oracle,
                                    SchedulerKind::AmdahlTree}) {
            Entry *entry = nullptr;
            for (Entry &e : suite) {
                if (e.name() == name)
                    entry = &e;
            }
            if (entry == nullptr)
                continue;
            BenchmarkModel &bm = entry->model(CoreKind::OOO2);
            const ExoResult res = bm.evaluate(kFullBsaMask, sched);
            const ExoResult &base = bm.baseline();
            std::vector<std::string> row{
                name,
                sched == SchedulerKind::Oracle ? "Oracle"
                                               : "Amdahl",
                fmt(static_cast<double>(res.cycles) /
                        static_cast<double>(base.cycles),
                    2)};
            for (int u = 0; u < kNumUnits; ++u)
                row.push_back(fmtPct(res.unitCycleFraction(u), 0));
            row.push_back(fmt(res.energy / base.energy, 2));
            t.addRow(row);
        }
        t.addSeparator();
    }
    std::printf("%s", t.render().c_str());

    // Aggregate comparison over all workloads (Section 5.4).
    std::vector<double> perf_ratio;
    std::vector<double> eff_ratio;
    for (Entry &e : suite) {
        BenchmarkModel &bm = e.model(CoreKind::OOO2);
        const ExoResult o =
            bm.evaluate(kFullBsaMask, SchedulerKind::Oracle);
        const ExoResult a =
            bm.evaluate(kFullBsaMask, SchedulerKind::AmdahlTree);
        perf_ratio.push_back(static_cast<double>(o.cycles) /
                             static_cast<double>(a.cycles));
        eff_ratio.push_back(o.energy / a.energy);
    }
    std::printf("\nAcross all benchmarks, the Amdahl-Tree scheduler "
                "achieves %s geomean energy-efficiency improvement "
                "over the Oracle's schedule (paper: 1.21x)\nand %s "
                "of the Oracle scheduler's performance (paper: "
                "0.89x).\n",
                fmtX(geomean(eff_ratio)).c_str(),
                fmtX(geomean(perf_ratio)).c_str());
    printCacheSummary();
    return 0;
}
