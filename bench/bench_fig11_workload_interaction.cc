/**
 * @file
 * Regenerates Figure 11: the Figure 10 tradeoff curves split by
 * workload regularity class — regular (TPT, Parboil), semi-regular
 * (Mediabench, TPCH, SPECfp), and irregular (SPECint) — showing BSAs
 * retain potential even on irregular codes.
 */

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Figure 11: Interaction between Accelerator, General Core,"
           " and Workloads");

    ThreadPool pool(opt.threads);
    auto suite = loadSuite();
    Stopwatch sw;
    prepareEntries(pool, suite, kTable4Cores);

    struct Line
    {
        const char *label;
        unsigned mask;
    };
    const Line lines[] = {
        {"Gen. Core Only", 0},
        {"SIMD", bsaBit(BsaKind::Simd)},
        {"DP-CGRA", bsaBit(BsaKind::DpCgra)},
        {"NS-DF", bsaBit(BsaKind::Nsdf)},
        {"TRACE-P", bsaBit(BsaKind::Tracep)},
        {"ExoCore", kFullBsaMask},
    };
    const SuiteClass classes[] = {SuiteClass::Regular,
                                  SuiteClass::SemiRegular,
                                  SuiteClass::Irregular};

    // One task per (class, line, core); deterministic placement.
    const std::size_t n_cores = kTable4Cores.size();
    const std::size_t n_lines = std::size(lines);
    const std::size_t n_combos =
        std::size(classes) * n_lines * n_cores;
    const std::vector<PerfEnergy> combo =
        parallelMapIndex(pool, n_combos, [&](std::size_t i) {
            const SuiteClass cls = classes[i / (n_lines * n_cores)];
            const Line &line = lines[(i / n_cores) % n_lines];
            const CoreKind core = kTable4Cores[i % n_cores];
            std::vector<double> perf;
            std::vector<double> energy;
            for (const Entry &e : suite) {
                if (e.spec().cls != cls)
                    continue;
                const PerfEnergy pe =
                    evalConfig(e, core, line.mask, CoreKind::IO2);
                perf.push_back(pe.perf);
                energy.push_back(pe.energy);
            }
            PerfEnergy pe;
            pe.perf = geomean(perf);
            pe.energy = geomean(energy);
            return pe;
        });
    std::printf("evaluated %zu (class, config, core) combos in "
                "%.1fs (%u threads)\n",
                n_combos, sw.seconds(), pool.size());
    printCacheSummary();

    std::map<std::tuple<SuiteClass, std::string, CoreKind>,
             PerfEnergy>
        results;

    std::size_t idx = 0;
    for (SuiteClass cls : classes) {
        std::printf("\n-- %s workloads --\n", suiteClassName(cls));
        Table t({"config", "core", "rel. performance",
                 "rel. energy"});
        for (const Line &line : lines) {
            for (CoreKind core : kTable4Cores) {
                const PerfEnergy &pe = combo[idx++];
                results[{cls, line.label, core}] = pe;
                t.addRow({line.label, coreConfig(core).name,
                          fmt(pe.perf, 2), fmt(pe.energy, 2)});
            }
            t.addSeparator();
        }
        std::printf("%s", t.render().c_str());
    }

    // Section 5.1 claims about the irregular class.
    const auto &exo2 = results[{SuiteClass::Irregular, "ExoCore",
                                CoreKind::OOO2}];
    const auto &simd2 = results[{SuiteClass::Irregular, "SIMD",
                                 CoreKind::OOO2}];
    std::printf("\nIrregular workloads, full OOO2 ExoCore vs OOO2 "
                "with SIMD:\n  %s performance, %s energy benefit "
                "(paper: ~1.6x / 1.6x)\n",
                fmtX(exo2.perf / simd2.perf).c_str(),
                fmtX(simd2.energy / exo2.energy).c_str());
    const auto &reg_exo2 = results[{SuiteClass::Regular, "ExoCore",
                                    CoreKind::OOO2}];
    const auto &reg_gpp2 = results[{SuiteClass::Regular,
                                    "Gen. Core Only",
                                    CoreKind::OOO2}];
    std::printf("Regular workloads, full OOO2 ExoCore vs OOO2:\n"
                "  %s performance, %s energy benefit "
                "(paper: ~3.5x / 3x)\n",
                fmtX(reg_exo2.perf / reg_gpp2.perf).c_str(),
                fmtX(reg_gpp2.energy / reg_exo2.energy).c_str());
    return 0;
}
