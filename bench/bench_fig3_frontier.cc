/**
 * @file
 * Regenerates Figure 3 / the abstract's headline claim: a 2-wide OOO
 * ExoCore with three BSAs (SIMD + DP-CGRA + NS-DF) matches the
 * performance of a conventional 6-wide OOO core with SIMD, with ~40%
 * lower area and ~2.6x better energy efficiency; the ExoCore design
 * frontier dominates the general-purpose core frontier.
 */

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Figure 3: Results of Design-Space Exploration (headline)");

    ThreadPool pool(opt.threads);
    auto suite = loadSuite();
    const CoreKind cores[] = {CoreKind::IO2, CoreKind::OOO2,
                              CoreKind::OOO6};
    Stopwatch sw;
    prepareEntries(pool, suite, cores);

    struct Point
    {
        const char *label;
        CoreKind core;
        unsigned mask;
        double perf = 0;
        double energy = 0;
        double area = 0;
    };
    std::vector<Point> pts = {
        {"OOO2 core", CoreKind::OOO2, 0, 0, 0, 0},
        {"OOO6 core + SIMD", CoreKind::OOO6, bsaBit(BsaKind::Simd),
         0, 0, 0},
        {"OOO2 ExoCore (S+D+N)", CoreKind::OOO2,
         bsaBit(BsaKind::Simd) | bsaBit(BsaKind::DpCgra) |
             bsaBit(BsaKind::Nsdf),
         0, 0, 0},
        {"OOO2 ExoCore (full)", CoreKind::OOO2, kFullBsaMask, 0, 0,
         0},
        {"OOO6 ExoCore (full)", CoreKind::OOO6, kFullBsaMask, 0, 0,
         0},
    };

    pool.parallelFor(pts.size(), [&](std::size_t i) {
        Point &p = pts[i];
        std::vector<double> perf;
        std::vector<double> energy;
        for (const Entry &e : suite) {
            const PerfEnergy pe =
                evalConfig(e, p.core, p.mask, CoreKind::IO2);
            perf.push_back(pe.perf);
            energy.push_back(pe.energy);
        }
        p.perf = geomean(perf);
        p.energy = geomean(energy);
        p.area = exoCoreArea(p.core, p.mask);
    });
    std::printf("evaluated %zu designs x %zu workloads in %.1fs "
                "(%u threads)\n",
                pts.size(), suite.size(), sw.seconds(),
                pool.size());
    printCacheSummary();

    Table t({"design", "rel. performance", "rel. energy",
             "area (mm^2)"});
    for (const Point &p : pts) {
        t.addRow({p.label, fmt(p.perf, 2), fmt(p.energy, 2),
                  fmt(p.area, 1)});
    }
    std::printf("%s", t.render().c_str());

    const Point &exo = pts[2];   // OOO2-SDN
    const Point &ooo6s = pts[1]; // OOO6-S
    std::printf("\nOOO2-SDN ExoCore vs OOO6+SIMD:\n");
    std::printf("  performance       : %s (paper: matches, ~1.0x)\n",
                fmtX(exo.perf / ooo6s.perf).c_str());
    std::printf("  energy efficiency : %s (paper: 2.6x)\n",
                fmtX(ooo6s.energy / exo.energy).c_str());
    std::printf("  area              : %s lower (paper: 40%% lower)\n",
                fmtPct(1.0 - exo.area / ooo6s.area, 0).c_str());

    const Point &full6 = pts[4];
    std::printf("\nOOO6 ExoCore vs OOO6+SIMD: %s speedup, %s energy "
                "efficiency (paper Fig.3: 1.4x / 1.7x)\n",
                fmtX(full6.perf / ooo6s.perf).c_str(),
                fmtX(ooo6s.energy / full6.energy).c_str());
    return 0;
}
