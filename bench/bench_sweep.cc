/**
 * @file
 * Sharded design-space sweep: the Figure 12 characterization scaled
 * up to the full grid — every CoreKind (6) x all 16 BSA subsets x
 * every Table 3 workload — on the sharded sweep driver
 * (tdg/sweep.hh).
 *
 * Flags beyond the shared bench set (bench_util.hh):
 *   --shard I/N   evaluate only grid points with index % N == I
 *                 (deterministic round-robin slice; default 0/1)
 *   --cores LIST  comma-separated core subset, e.g. OOO2,OOO6
 *                 (default: all six)
 *
 * Every run executes the shard twice — once on 1 thread, once on the
 * requested pool — and fails hard unless the rendered tables are
 * byte-identical: the parallel sweep must be indistinguishable from
 * the serial one in everything but wall-clock.
 */

#include <cstring>

#include "bench_util.hh"

#include "common/logging.hh"
#include "tdg/sweep.hh"

using namespace prism;
using namespace prism::bench;

namespace
{

CoreKind
parseCore(const std::string &name)
{
    for (CoreKind core : kAllCoreKinds) {
        if (name == coreConfig(core).name)
            return core;
    }
    fatal("unknown core '%s' (expected one of the CoreKind names, "
          "e.g. IO2, OOO2, OOO6)",
          name.c_str());
}

/** Split "a,b,c" into parseCore()d kinds. */
std::vector<CoreKind>
parseCores(const std::string &list)
{
    std::vector<CoreKind> cores;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > pos)
            cores.push_back(parseCore(list.substr(pos, end - pos)));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (cores.empty())
        fatal("--cores needs at least one core name");
    return cores;
}

/** "I/N" with 0 <= I < N. */
void
parseShard(const std::string &v, SweepGrid &grid)
{
    const std::size_t slash = v.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= v.size())
        fatal("--shard needs the form I/N, got '%s'", v.c_str());
    const long i = std::atol(v.substr(0, slash).c_str());
    const long n = std::atol(v.substr(slash + 1).c_str());
    if (n <= 0 || i < 0 || i >= n)
        fatal("--shard %s out of range (need 0 <= I < N)", v.c_str());
    grid.shardIndex = static_cast<unsigned>(i);
    grid.shardCount = static_cast<unsigned>(n);
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the sweep-specific flags, forward the rest to the
    // shared parser.
    SweepGrid grid;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag, std::string &out) -> bool {
            const std::size_t len = std::strlen(flag);
            if (std::strncmp(argv[i], flag, len) != 0)
                return false;
            if (argv[i][len] == '=') {
                out = argv[i] + len + 1;
                return true;
            }
            if (argv[i][len] == '\0') {
                if (i + 1 >= argc)
                    fatal("%s requires a value", flag);
                out = argv[++i];
                return true;
            }
            return false;
        };
        std::string v;
        if (value("--shard", v))
            parseShard(v, grid);
        else if (value("--cores", v))
            grid.cores = parseCores(v);
        else
            rest.push_back(argv[i]);
    }
    const BenchOptions opt = parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());

    DesignSpaceSweep sweep(grid, allWorkloads());
    const std::size_t total = sweepGridSize(sweep.grid());
    const std::size_t mine = sweep.shardPoints().size();

    banner("Sharded design-space sweep");
    std::printf("grid: %zu cores x %u subsets = %zu points; shard "
                "%u/%u evaluates %zu\n",
                sweep.grid().cores.size(), sweep.grid().numMasks,
                total, sweep.grid().shardIndex,
                sweep.grid().shardCount, mine);

    ThreadPool pool(opt.threads);
    Stopwatch load_sw;
    sweep.load(pool);
    std::printf("loaded workloads in %.1fs (%u threads, %u running)\n",
                load_sw.seconds(), pool.size(),
                pool.effectiveContexts());
    printCacheSummary();

    if (ArtifactCache::global()) {
        // Prewarm model tables so both timed legs below do symmetric
        // work (see bench_fig12_design_space for the rationale).
        Stopwatch warm_sw;
        sweep.prepare(pool);
        sweep.dropModels();
        std::printf("model cache prewarmed in %.1fs\n",
                    warm_sw.seconds());
    }

    banner("Serial vs parallel shard sweep");

    ThreadPool serial(1);
    Stopwatch serial_sw;
    sweep.dropModels();
    sweep.prepare(serial);
    const std::string serial_table =
        renderSweepTable(sweep.run(serial));
    const double serial_s = serial_sw.seconds();

    Stopwatch par_sw;
    sweep.dropModels();
    sweep.prepare(pool);
    const std::vector<SweepPoint> points = sweep.run(pool);
    const double par_s = par_sw.seconds();
    const std::string table = renderSweepTable(points);

    std::printf("serial sweep   (1 thread)          : %6.1fs\n",
                serial_s);
    std::printf("parallel sweep (%u thread%s, %u run): %6.1fs\n",
                pool.size(), pool.size() == 1 ? " " : "s",
                pool.effectiveContexts(), par_s);
    std::printf("speedup: %.2fx\n",
                par_s > 0 ? serial_s / par_s : 0.0);
    const bool identical = table == serial_table;
    std::printf("metric tables byte-identical across thread counts: "
                "%s\n",
                identical ? "yes" : "NO (BUG)");
    if (!identical)
        fatal("parallel sweep diverged from serial sweep");

    banner("Shard table (sorted by speedup)");
    std::printf("%s", table.c_str());

    printCacheSummary();
    return 0;
}
