/**
 * @file
 * Regenerates Figure 12: the full design-space characterization — all
 * 64 combinations of {IO2, OOO2, OOO4, OOO6} x 16 BSA subsets.
 * Prints speedup, energy efficiency, and area relative to the IO2
 * core, sorted by speedup (the paper's x-axis ordering), then checks
 * the quantitative bullets of Section 5.2.
 *
 * This bench doubles as the exploration engine's self-check: the
 * sweep (per-core model construction + 64-config grid) runs twice,
 * once on 1 thread and once on N threads, verifies the two metric
 * tables are byte-identical, and reports the wall-clock speedup.
 * With `--cache-dir=DIR`, trace generation is skipped entirely on
 * repeat runs (paper Section 2.6: record once, explore many).
 */

#include <algorithm>

#include "bench_util.hh"

#include "common/logging.hh"

using namespace prism;
using namespace prism::bench;

namespace
{

struct DesignPoint
{
    CoreKind core;
    unsigned mask;
    std::string name;
    double speedup = 1.0;   ///< vs IO2 core alone
    double energyEff = 1.0; ///< IO2 energy / energy
    double area = 1.0;      ///< vs IO2 core area
};

/**
 * One timed sweep leg: build every (workload, core) model, then
 * evaluate the full 64-point grid. Models are rebuilt from scratch
 * each leg so serial and parallel legs do identical work.
 */
std::vector<DesignPoint>
runSweep(ThreadPool &pool, std::vector<Entry> &suite)
{
    for (Entry &e : suite)
        e.clearModels();
    prepareEntries(pool, suite, kTable4Cores);

    std::vector<DesignPoint> grid;
    for (CoreKind core : kTable4Cores) {
        for (unsigned mask = 0; mask < 16; ++mask) {
            DesignPoint dp;
            dp.core = core;
            dp.mask = mask;
            dp.name = configName(core, mask);
            grid.push_back(dp);
        }
    }

    pool.parallelFor(grid.size(), [&](std::size_t i) {
        DesignPoint &dp = grid[i];
        std::vector<double> perf;
        std::vector<double> eff;
        for (const Entry &e : suite) {
            const PerfEnergy pe =
                evalConfig(e, dp.core, dp.mask, CoreKind::IO2);
            perf.push_back(pe.perf);
            eff.push_back(1.0 / pe.energy);
        }
        dp.speedup = geomean(perf);
        dp.energyEff = geomean(eff);
        dp.area =
            exoCoreArea(dp.core, dp.mask) / coreArea(CoreKind::IO2);
    });
    return grid;
}

/** The paper's table: points sorted by speedup, rendered to text. */
std::string
renderTable(std::vector<DesignPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  return a.speedup > b.speedup;
              });
    Table t({"config", "speedup", "energy eff.", "area"});
    for (const DesignPoint &dp : points) {
        t.addRow({dp.name, fmt(dp.speedup, 2), fmt(dp.energyEff, 2),
                  fmt(dp.area, 2)});
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);

    banner("Figure 12: Design-Space Characterization (64 points; "
           "S: SIMD, D: DP-CGRA, N: NS-DF, T: Trace-P)");

    // Workloads load once up front (parallel, trace-cache-aware), so
    // the two timed legs below compare the sweep itself rather than
    // asymmetric cache warm-up.
    ThreadPool pool(opt.threads);
    Stopwatch load_sw;
    auto suite = loadSuite();
    loadEntries(pool, suite);
    std::printf("loaded %zu workloads in %.1fs (%u threads)\n",
                suite.size(), load_sw.seconds(), pool.size());
    printCacheSummary();

    if (ArtifactCache::global()) {
        // Prewarm the model-table artifacts so the two timed legs
        // below do symmetric work: without this, the first leg
        // builds models cold and stores them while the second just
        // loads them back, and the serial-vs-parallel comparison
        // measures the cache instead of the sweep.
        Stopwatch warm_sw;
        prepareEntries(pool, suite, kTable4Cores);
        for (Entry &e : suite)
            e.clearModels();
        std::printf("model cache prewarmed in %.1fs\n",
                    warm_sw.seconds());
    }

    banner("Exploration engine: serial vs parallel sweep");

    ThreadPool serial(1);
    Stopwatch serial_sw;
    const std::vector<DesignPoint> serial_points =
        runSweep(serial, suite);
    const double serial_s = serial_sw.seconds();
    const std::string serial_table = renderTable(serial_points);

    Stopwatch par_sw;
    const std::vector<DesignPoint> points = runSweep(pool, suite);
    const double par_s = par_sw.seconds();
    const std::string table = renderTable(points);

    const bool identical = table == serial_table;
    std::printf("serial sweep   (1 thread)   : %6.1fs\n", serial_s);
    std::printf("parallel sweep (%u thread%s): %6.1fs\n", pool.size(),
                pool.size() == 1 ? " " : "s", par_s);
    std::printf("speedup: %.2fx\n",
                par_s > 0 ? serial_s / par_s : 0.0);
    std::printf("metric tables byte-identical across thread counts: "
                "%s\n",
                identical ? "yes" : "NO (BUG)");
    if (!identical)
        fatal("parallel sweep diverged from serial sweep");

    banner("Figure 12 table");
    std::printf("%s", table.c_str());

    auto find = [&points](const std::string &name)
        -> const DesignPoint & {
        for (const DesignPoint &dp : points) {
            if (dp.name == name)
                return dp;
        }
        fatal("missing design point %s", name.c_str());
    };

    banner("Section 5.2 design-choice checks");
    const DesignPoint &ooo6s = find("OOO6-S"); // OOO6 + SIMD baseline
    const DesignPoint &ooo2s = find("OOO2-S");
    const DesignPoint &ooo6 = find("OOO6");

    // [Performance] ExoCores matching OOO6-SIMD with less area.
    int ooo2_match = 0;
    int ooo4_match = 0;
    for (const DesignPoint &dp : points) {
        if (dp.speedup < ooo6s.speedup)
            continue;
        if (dp.core == CoreKind::OOO2 && dp.mask != 0)
            ++ooo2_match;
        if (dp.core == CoreKind::OOO4 && dp.mask != 0)
            ++ooo4_match;
    }
    std::printf("OOO2 ExoCores matching OOO6-SIMD performance: %d "
                "(paper: 4)\n",
                ooo2_match);
    std::printf("OOO4 ExoCores matching OOO6-SIMD performance: %d "
                "(paper: 9)\n",
                ooo4_match);

    // [Performance] best in-order point vs OOO6.
    double best_io = 0;
    for (const DesignPoint &dp : points) {
        if (dp.core == CoreKind::IO2)
            best_io = std::max(best_io, dp.speedup);
    }
    std::printf("Best IO2 ExoCore reaches %s of OOO6 performance "
                "(paper: 88%%)\n",
                fmtPct(best_io / ooo6.speedup, 0).c_str());

    // [Energy] points beating the OOO2-SIMD energy efficiency.
    int io_beat = 0;
    int ooo4_beat = 0;
    for (const DesignPoint &dp : points) {
        if (dp.energyEff <= ooo2s.energyEff)
            continue;
        if (dp.core == CoreKind::IO2 && dp.mask != 0)
            ++io_beat;
        if (dp.core == CoreKind::OOO4 && dp.mask != 0)
            ++ooo4_beat;
    }
    std::printf("In-order ExoCores beating OOO2-SIMD energy "
                "efficiency: %d (paper: 12)\n",
                io_beat);
    std::printf("OOO4 ExoCores beating OOO2-SIMD energy efficiency: "
                "%d (paper: 5)\n",
                ooo4_beat);

    // [Full ExoCores] orderings.
    const DesignPoint &full_io2 = find("IO2-SDNT");
    const DesignPoint &full_ooo4 = find("OOO4-SDNT");
    const DesignPoint &full_ooo6 = find("OOO6-SDNT");
    double best_eff = 0;
    std::string best_eff_name;
    double best_perf = 0;
    std::string best_perf_name;
    for (const DesignPoint &dp : points) {
        if (dp.energyEff > best_eff) {
            best_eff = dp.energyEff;
            best_eff_name = dp.name;
        }
        if (dp.speedup > best_perf) {
            best_perf = dp.speedup;
            best_perf_name = dp.name;
        }
    }
    std::printf("Most energy-efficient design: %s (paper: full IO2 "
                "ExoCore); full IO2 ExoCore eff = %s\n",
                best_eff_name.c_str(),
                fmt(full_io2.energyEff, 2).c_str());
    std::printf("Best-performing design: %s (paper: full OOO6 "
                "ExoCore)\n",
                best_perf_name.c_str());
    std::printf("Full OOO4 vs full OOO6 ExoCore: %s performance, "
                "%s energy, %s area (paper: 10%% lower perf, 1.25x "
                "lower energy, 1.36x lower area)\n",
                fmtPct(full_ooo4.speedup / full_ooo6.speedup, 0)
                    .c_str(),
                fmtX(full_ooo6.energyEff > 0
                         ? full_ooo4.energyEff / full_ooo6.energyEff
                         : 0)
                    .c_str(),
                fmtX(full_ooo6.area / full_ooo4.area).c_str());

    printCacheSummary();
    return 0;
}
