/**
 * @file
 * Regenerates Table 1: TDG validation summary. The µDG core model is
 * cross-validated against an independent discrete-event cycle
 * simulator at the 1-wide and 8-wide OOO extremes (the paper's
 * OOO8->OOO1 / OOO1->OOO8 experiment); each BSA's TDG model is
 * validated against an independent analytic reference model over its
 * original publication's benchmark set (see DESIGN.md for the
 * substitution mapping: C-Cores -> NS-DF, BERET -> Trace-P,
 * DySER -> DP-CGRA).
 */

#include "validation_common.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchArgs(argc, argv);
    banner("Table 1: Validation Results (P: Perf, E: Energy)");

    ThreadPool pool(opt.threads);
    Stopwatch sw;
    Table t({"Accel.", "Base", "P Err.", "P Range", "E Err.",
             "E Range"});

    // ---- OOO core cross-validation on the microbenchmarks ----
    auto micro = loadMicrobenchmarks();
    {
        const CoreValidation v1 =
            validateCore(pool, micro, CoreKind::OOO1);
        t.addRow({"OOO8->1", "-", fmtPct(avgError(v1.ipc), 0),
                  rangeOf(v1.ipc) + " IPC",
                  fmtPct(avgError(v1.ipe), 0),
                  rangeOf(v1.ipe) + " IPE"});
        const CoreValidation v8 =
            validateCore(pool, micro, CoreKind::OOO8);
        t.addRow({"OOO1->8", "-", fmtPct(avgError(v8.ipc), 0),
                  rangeOf(v8.ipc) + " IPC",
                  fmtPct(avgError(v8.ipe), 0),
                  rangeOf(v8.ipe) + " IPE"});
    }

    // ---- BSA validation against analytic references ----
    auto suite = loadSuite();
    loadEntries(pool, suite);
    struct Row
    {
        const char *label;
        BsaKind bsa;
    };
    const Row rows[] = {
        {"C-Cores (NS-DF)", BsaKind::Nsdf},
        {"BERET (Trace-P)", BsaKind::Tracep},
        {"SIMD", BsaKind::Simd},
        {"DySER (DP-CGRA)", BsaKind::DpCgra},
    };
    double worst = 0;
    for (const Row &row : rows) {
        const CoreKind base = validationBase(row.bsa);
        const BsaValidation v = validateBsa(
            pool, suite, row.bsa, base, validationSet(row.bsa));
        t.addRow({row.label, coreConfig(base).name,
                  fmtPct(avgError(v.speedup), 0),
                  rangeOf(v.speedup) + "x",
                  fmtPct(avgError(v.energy), 0),
                  rangeOf(v.energy) + "x"});
        worst = std::max({worst, avgError(v.speedup),
                          avgError(v.energy)});
    }
    std::printf("validated in %.1fs (%u threads)\n", sw.seconds(),
                pool.size());
    printCacheSummary();
    std::printf("%s", t.render().c_str());

    std::printf("\nPaper reports <15%% average error for speedup and "
                "energy reduction;\nthis reproduction's worst "
                "per-accelerator average error: %s.\n",
                fmtPct(worst, 0).c_str());
    return 0;
}
