/**
 * @file
 * Regenerates Table 4: general core configurations, plus the derived
 * area and per-cycle leakage of each design point.
 */

#include "bench_util.hh"

#include "energy/area_model.hh"
#include "energy/energy_model.hh"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    banner("Table 4: General Core Configurations");

    Table t({"Parameter", "IO2", "OOO2", "OOO4", "OOO6"});
    auto row = [&t](const char *name, auto fn) {
        std::vector<std::string> cells{name};
        for (CoreKind k : kTable4Cores)
            cells.push_back(fn(coreConfig(k)));
        t.addRow(cells);
    };
    row("Fetch/Dispatch/Issue/WB width", [](const CoreConfig &c) {
        return std::to_string(c.width);
    });
    row("ROB size", [](const CoreConfig &c) {
        return c.inorder ? std::string("-")
                         : std::to_string(c.robSize);
    });
    row("Instr. window", [](const CoreConfig &c) {
        return c.inorder ? std::string("-")
                         : std::to_string(c.instWindow);
    });
    row("DCache ports", [](const CoreConfig &c) {
        return std::to_string(c.dcachePorts);
    });
    row("FUs (ALU,Mul/Div,FP)", [](const CoreConfig &c) {
        return std::to_string(c.numAlu) + "," +
               std::to_string(c.numMulDiv) + "," +
               std::to_string(c.numFp);
    });
    t.addSeparator();
    row("Area (mm^2 @22nm, +L1)", [](const CoreConfig &c) {
        return fmt(coreArea(coreKindFromName(c.name)), 1);
    });
    row("Leakage (pJ/cycle)", [](const CoreConfig &c) {
        const EnergyModel m(c);
        return fmt(m.table().coreLeakage, 1);
    });
    std::printf("%s", t.render().c_str());

    std::printf("\nCommon: 2-way 32KiB I$ + 64KiB L1D$ (4-cycle), "
                "8-way 2MB L2$ (22-cycle hit), 256-bit SIMD.\n");

    banner("BSA hardware parameters (Section 3.1)");
    Table a({"BSA", "issue", "window", "mem ports", "WB bus",
             "config cyc", "area mm^2"});
    auto arow = [&a](const char *name, const AccelParams &p,
                     BsaKind kind) {
        a.addRow({name, std::to_string(p.issueWidth),
                  std::to_string(p.window),
                  std::to_string(p.memPorts),
                  std::to_string(p.wbBusWidth),
                  std::to_string(p.configCycles),
                  fmt(bsaArea(kind), 2)});
    };
    a.addRow({"SIMD (vector datapath on core)", "-", "-", "-", "-",
              "0", fmt(bsaArea(BsaKind::Simd), 2)});
    arow("DP-CGRA", dpCgraParams(), BsaKind::DpCgra);
    arow("NS-DF", nsdfParams(), BsaKind::Nsdf);
    arow("Trace-P", tracepParams(), BsaKind::Tracep);
    std::printf("%s", a.render().c_str());
    return 0;
}
