/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmark
 * binaries: workload loading, (workload x core) model caching, and
 * aggregate helpers. Each bench binary regenerates one table or
 * figure of the paper (see DESIGN.md's per-experiment index).
 *
 * The grid-style benches run on the parallel exploration engine
 * (common/thread_pool.hh): workload loading, per-core model
 * construction, and per-(core, BSA-subset) evaluation are
 * independent, data-race-free tasks. The split is two-phase:
 *
 *   1. mutate phase — Entry::load() runs with one task per entry,
 *      then Entry::buildModel() with one task per (entry, core);
 *      each task writes only its own Entry slot (prepareEntries());
 *   2. read phase — evaluation tasks take `const Entry &` and only
 *      call const members (shared Tdg/BenchmarkModel reads).
 *
 * All bench binaries accept `--threads=N` (default: PRISM_THREADS or
 * hardware concurrency), `--cache-dir=DIR` to persist generated
 * traces, TDG profiles, and model evaluation tables across runs
 * (paper Section 2.6: record once, explore many configurations), and
 * `--max-insts=N` to override every workload's instruction budget
 * (smoke-test runs).
 */

#ifndef PRISM_BENCH_BENCH_UTIL_HH
#define PRISM_BENCH_BENCH_UTIL_HH

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "tdg/artifacts.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism::bench
{

/** Command-line options shared by all bench binaries. */
struct BenchOptions
{
    /** Concurrency level (--threads, PRISM_THREADS, or hardware). */
    unsigned threads = 1;
    /** Artifact cache directory (--cache-dir); empty = disabled. */
    std::string cacheDir;
    /** Instruction-budget override (--max-insts); 0 = per-spec. */
    std::uint64_t maxInsts = 0;
};

/**
 * Parse the shared bench flags and install the global trace cache.
 * Accepts `--flag=value` and `--flag value`; fatal on unknown flags.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opt;
    opt.threads = defaultThreadCount();
    auto value = [&](int &i, const char *flag,
                     std::string &out) -> bool {
        const std::size_t len = std::strlen(flag);
        if (std::strncmp(argv[i], flag, len) != 0)
            return false;
        if (argv[i][len] == '=') {
            out = argv[i] + len + 1;
            return true;
        }
        if (argv[i][len] == '\0') {
            if (i + 1 >= argc)
                fatal("%s requires a value", flag);
            out = argv[++i];
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (value(i, "--cache-dir", v)) {
            opt.cacheDir = v;
        } else if (value(i, "--threads", v)) {
            const int n = std::atoi(v.c_str());
            if (n <= 0)
                fatal("--threads needs a positive integer, got '%s'",
                      v.c_str());
            opt.threads = static_cast<unsigned>(n);
        } else if (value(i, "--max-insts", v)) {
            const long long n = std::atoll(v.c_str());
            if (n <= 0)
                fatal("--max-insts needs a positive integer, got "
                      "'%s'",
                      v.c_str());
            opt.maxInsts = static_cast<std::uint64_t>(n);
        } else {
            fatal("unknown bench option '%s' (supported: "
                  "--cache-dir=DIR, --threads=N, --max-insts=N)",
                  argv[i]);
        }
    }
    if (!opt.cacheDir.empty())
        ArtifactCache::setGlobalDir(opt.cacheDir);
    if (opt.maxInsts)
        setMaxInstsOverride(opt.maxInsts);
    return opt;
}

/** Wall-clock stopwatch for sweep timing. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    void reset() { start_ = std::chrono::steady_clock::now(); }

    double
    seconds() const
    {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Print per-artifact-kind cache effectiveness (no-op when the cache
 *  is disabled or untouched). */
inline void
printCacheSummary()
{
    const ArtifactCache *cache = ArtifactCache::global();
    if (!cache)
        return;
    const auto all = cache->allStats();
    if (all.empty())
        return;
    std::printf("artifact cache '%s':\n", cache->dir().c_str());
    for (const auto &[kind, s] : all) {
        std::printf("  %-8s %llu hits, %llu misses (%llu rejected), "
                    "%llu stores, %.1f KiB read, %.1f KiB written\n",
                    kind.c_str(),
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.rejected),
                    static_cast<unsigned long long>(s.stores),
                    static_cast<double>(s.bytesRead) / 1024.0,
                    static_cast<double>(s.bytesWritten) / 1024.0);
    }
}

/** One workload with per-core models. */
class Entry
{
  public:
    explicit Entry(const WorkloadSpec &spec) : spec_(&spec) {}

    const WorkloadSpec &spec() const { return *spec_; }
    std::string_view name() const { return spec_->name; }

    /** Materialize the workload (idempotent). Mutate phase: at most
     *  one task may operate on an Entry at a time. */
    void
    load()
    {
        if (!lw_)
            lw_ = LoadedWorkload::load(*spec_);
    }

    bool loaded() const { return lw_ != nullptr; }

    /** True if the trace came from the on-disk cache. */
    bool fromCache() const { return lw_ && lw_->fromCache(); }

    /**
     * Build the model for `core` (idempotent). Mutate phase: tasks
     * for distinct (entry, core) pairs are data-race-free as long as
     * the entry was load()ed first — each writes one distinct slot.
     *
     * This is a tiered load-or-compute (RAM LRU -> disk -> timing
     * runs): warm components skip every timing run, leaving only the
     * cheap model-object assembly.
     */
    void
    buildModel(CoreKind core)
    {
        load();
        std::unique_ptr<BenchmarkModel> &slot =
            models_[static_cast<std::size_t>(core)];
        if (slot)
            return;
        slot = buildModelCached(
            ArtifactCache::global(), lw_->name(), lw_->tdg(),
            lw_->maxInsts(),
            PipelineConfig{.core = coreConfig(core)});
    }

    /** Drop built models (e.g. between timed sweep legs). */
    void
    clearModels()
    {
        for (auto &m : models_)
            m.reset();
    }

    const Tdg &
    tdg() const
    {
        prism_assert(lw_ != nullptr, "entry '%s' not loaded",
                     spec_->name);
        return lw_->tdg();
    }

    /** Lazy convenience for serial benches. */
    const Tdg &
    tdg()
    {
        load();
        return lw_->tdg();
    }

    /** Lazy convenience for serial benches (loads and builds on
     *  demand; not safe to share across tasks). */
    BenchmarkModel &
    model(CoreKind core)
    {
        buildModel(core);
        return *models_[static_cast<std::size_t>(core)];
    }

    /** Read phase: requires a prior buildModel(core); const and
     *  safe to call from many tasks concurrently. */
    const BenchmarkModel &
    model(CoreKind core) const
    {
        const auto &slot = models_[static_cast<std::size_t>(core)];
        prism_assert(slot != nullptr,
                     "model for '%s' core %d not prepared",
                     spec_->name, static_cast<int>(core));
        return *slot;
    }

  private:
    const WorkloadSpec *spec_;
    std::unique_ptr<LoadedWorkload> lw_;
    /** One slot per CoreKind: disjoint writes from parallel
     *  per-(entry, core) buildModel tasks. */
    std::array<std::unique_ptr<BenchmarkModel>, kAllCoreKinds.size()>
        models_;
};

/** All Table 3 workloads as bench entries. */
inline std::vector<Entry>
loadSuite()
{
    std::vector<Entry> entries;
    for (const WorkloadSpec &spec : allWorkloads())
        entries.emplace_back(spec);
    return entries;
}

/** The vertical microbenchmarks as bench entries. */
inline std::vector<Entry>
loadMicrobenchmarks()
{
    std::vector<Entry> entries;
    for (const WorkloadSpec &spec : microbenchmarks())
        entries.emplace_back(spec);
    return entries;
}

/** Parallel workload loading only (no models). */
inline void
loadEntries(ThreadPool &pool, std::vector<Entry> &entries)
{
    pool.parallelFor(entries.size(),
                     [&](std::size_t i) { entries[i].load(); });
}

/**
 * Parallel mutate phase: load every entry, then build its models for
 * `cores` with one task per (entry, core) — a long-pole workload no
 * longer serializes all of its core models on one worker. Distinct
 * (entry, core) tasks write distinct Entry slots, so no two tasks
 * share state; afterwards the const read paths are safe from any
 * number of tasks.
 */
inline void
prepareEntries(ThreadPool &pool, std::vector<Entry> &entries,
               std::span<const CoreKind> cores)
{
    loadEntries(pool, entries);
    pool.parallelFor(
        entries.size() * cores.size(), [&](std::size_t t) {
            entries[t / cores.size()].buildModel(
                cores[t % cores.size()]);
        });
}

/** Result pair used throughout the figures. */
struct PerfEnergy
{
    double perf = 1.0;   ///< relative performance (higher better)
    double energy = 1.0; ///< relative energy (lower better)
};

/**
 * Evaluate one ExoCore configuration for one workload, normalized to
 * a reference (core, no-BSA) baseline. Read phase: requires prepared
 * models for `core` and `ref_core`; const and data-race-free.
 */
inline PerfEnergy
evalConfig(const Entry &e, CoreKind core, unsigned mask,
           CoreKind ref_core,
           SchedulerKind sched = SchedulerKind::Oracle)
{
    const ExoResult res = e.model(core).evaluate(mask, sched);
    const ExoResult &ref = e.model(ref_core).baseline();
    PerfEnergy pe;
    pe.perf = static_cast<double>(ref.cycles) /
              static_cast<double>(res.cycles);
    pe.energy = res.energy / ref.energy;
    return pe;
}

/** Lazy overload for serial benches: builds models on demand. */
inline PerfEnergy
evalConfig(Entry &e, CoreKind core, unsigned mask, CoreKind ref_core,
           SchedulerKind sched = SchedulerKind::Oracle)
{
    e.buildModel(core);
    e.buildModel(ref_core);
    return evalConfig(static_cast<const Entry &>(e), core, mask,
                      ref_core, sched);
}

/** Geometric mean of a metric over entries. */
template <typename Fn>
double
geomeanOver(std::vector<Entry> &entries, Fn fn)
{
    std::vector<double> xs;
    xs.reserve(entries.size());
    for (Entry &e : entries)
        xs.push_back(fn(e));
    return geomean(xs);
}

/** Figure 12 style configuration name, e.g. "OOO2-SDN". */
inline std::string
configName(CoreKind core, unsigned mask)
{
    std::string name = coreConfig(core).name;
    if (mask != 0) {
        name += "-";
        for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
            if (mask & (1u << i))
                name += bsaLetter(kAllBsas[i]);
        }
    }
    return name;
}

/** Print a section header for bench output. */
inline void
banner(const char *title)
{
    std::printf("\n==== %s ====\n\n", title);
}

} // namespace prism::bench

#endif // PRISM_BENCH_BENCH_UTIL_HH
