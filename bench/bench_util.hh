/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmark
 * binaries: workload loading, (workload x core) model caching, and
 * aggregate helpers. Each bench binary regenerates one table or
 * figure of the paper (see DESIGN.md's per-experiment index).
 */

#ifndef PRISM_BENCH_BENCH_UTIL_HH
#define PRISM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism::bench
{

/** One workload with lazily built per-core models. */
class Entry
{
  public:
    explicit Entry(const WorkloadSpec &spec) : spec_(&spec) {}

    const WorkloadSpec &spec() const { return *spec_; }
    const std::string name() const { return spec_->name; }

    const Tdg &
    tdg()
    {
        ensureLoaded();
        return lw_->tdg();
    }

    BenchmarkModel &
    model(CoreKind core)
    {
        ensureLoaded();
        auto it = models_.find(core);
        if (it == models_.end()) {
            it = models_
                     .emplace(core, std::make_unique<BenchmarkModel>(
                                        lw_->tdg(), core))
                     .first;
        }
        return *it->second;
    }

  private:
    void
    ensureLoaded()
    {
        if (!lw_)
            lw_ = LoadedWorkload::load(*spec_);
    }

    const WorkloadSpec *spec_;
    std::unique_ptr<LoadedWorkload> lw_;
    std::map<CoreKind, std::unique_ptr<BenchmarkModel>> models_;
};

/** All Table 3 workloads as bench entries. */
inline std::vector<Entry>
loadSuite()
{
    std::vector<Entry> entries;
    for (const WorkloadSpec &spec : allWorkloads())
        entries.emplace_back(spec);
    return entries;
}

/** The vertical microbenchmarks as bench entries. */
inline std::vector<Entry>
loadMicrobenchmarks()
{
    std::vector<Entry> entries;
    for (const WorkloadSpec &spec : microbenchmarks())
        entries.emplace_back(spec);
    return entries;
}

/** Result pair used throughout the figures. */
struct PerfEnergy
{
    double perf = 1.0;   ///< relative performance (higher better)
    double energy = 1.0; ///< relative energy (lower better)
};

/**
 * Evaluate one ExoCore configuration for one workload, normalized to
 * a reference (core, no-BSA) baseline.
 */
inline PerfEnergy
evalConfig(Entry &e, CoreKind core, unsigned mask, CoreKind ref_core,
           SchedulerKind sched = SchedulerKind::Oracle)
{
    const ExoResult res = e.model(core).evaluate(mask, sched);
    const ExoResult &ref = e.model(ref_core).baseline();
    PerfEnergy pe;
    pe.perf = static_cast<double>(ref.cycles) /
              static_cast<double>(res.cycles);
    pe.energy = res.energy / ref.energy;
    return pe;
}

/** Geometric mean of a metric over entries. */
template <typename Fn>
double
geomeanOver(std::vector<Entry> &entries, Fn fn)
{
    std::vector<double> xs;
    xs.reserve(entries.size());
    for (Entry &e : entries)
        xs.push_back(fn(e));
    return geomean(xs);
}

/** Figure 12 style configuration name, e.g. "OOO2-SDN". */
inline std::string
configName(CoreKind core, unsigned mask)
{
    std::string name = coreConfig(core).name;
    if (mask != 0) {
        name += "-";
        for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
            if (mask & (1u << i))
                name += bsaLetter(kAllBsas[i]);
        }
    }
    return name;
}

/** Print a section header for bench output. */
inline void
banner(const char *title)
{
    std::printf("\n==== %s ====\n\n", title);
}

} // namespace prism::bench

#endif // PRISM_BENCH_BENCH_UTIL_HH
