/**
 * @file
 * Regenerates Figure 14: ExoCore dynamic switching behavior over
 * time for djpeg and an h264ref-like encoder — per interval of
 * baseline execution, the OOO2-ExoCore speedup and the unit the
 * interval's regions ran on, demonstrating fine-grain affinity for
 * different accelerators within one application.
 */

#include <algorithm>
#include <set>

#include "bench_util.hh"

using namespace prism;
using namespace prism::bench;

namespace
{

void
traceWorkload(Entry &e, std::size_t buckets)
{
    std::printf("\n-- %s --\n", e.spec().name);
    BenchmarkModel &bm = e.model(CoreKind::OOO2);
    const auto points = bm.timeline(kFullBsaMask);
    if (points.empty()) {
        std::printf("(no accelerated regions)\n");
        return;
    }
    const Cycle total = bm.baseline().cycles;
    const Cycle bucket_len =
        std::max<Cycle>(1, total / buckets);

    struct Bucket
    {
        double base = 0;
        double exo = 0;
        std::array<double, kNumUnits> unitBase{};
    };
    std::vector<Bucket> agg(buckets);
    for (const TimelinePoint &tp : points) {
        const std::size_t b = std::min<std::size_t>(
            tp.baseStart / bucket_len, buckets - 1);
        agg[b].base += static_cast<double>(tp.baseCycles);
        agg[b].exo += static_cast<double>(tp.exoCycles);
        agg[b].unitBase[tp.unit] +=
            static_cast<double>(tp.baseCycles);
    }

    Table t({"cycles into program", "speedup", "dominant unit"});
    for (std::size_t b = 0; b < buckets; ++b) {
        const Bucket &bk = agg[b];
        // Un-attributed cycles in this bucket ran on the GPP at 1x.
        // Regions are attributed to the bucket they start in, so
        // compare covered baseline cycles against their accelerated
        // cycles plus the uncovered remainder.
        const double span = static_cast<double>(bucket_len);
        const double gpp = std::max(0.0, span - bk.base);
        const double speedup =
            (gpp + bk.base) / std::max(1.0, gpp + bk.exo);
        int best_unit = 0;
        double best = gpp;
        for (int u = 1; u < kNumUnits; ++u) {
            if (bk.unitBase[u] > best) {
                best = bk.unitBase[u];
                best_unit = u;
            }
        }
        t.addRow({std::to_string(b * bucket_len),
                  fmt(speedup, 2), unitName(best_unit)});
    }
    std::printf("%s", t.render().c_str());

    // Count distinct units engaged over the run.
    std::set<int> units;
    for (const TimelinePoint &tp : points)
        units.insert(tp.unit);
    std::printf("distinct BSAs engaged: %zu\n", units.size());
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    banner("Figure 14: ExoCore's Dynamic Switching Behavior "
           "(OOO2 ExoCore speedup over OOO2, over time)");

    auto suite = loadSuite();
    for (Entry &e : suite) {
        if (e.name() == "djpeg-1" || e.name() == "464.h264ref")
            traceWorkload(e, 24);
    }
    printCacheSummary();
    return 0;
}
