/**
 * @file
 * Unit tests for the energy/area models: SRAM scaling laws, per-core
 * energy-table ordering, leakage/gating behavior, area composition.
 */

#include <gtest/gtest.h>

#include "energy/area_model.hh"
#include "energy/energy_model.hh"
#include "energy/sram_model.hh"

namespace prism
{
namespace
{

TEST(Sram, EnergyScalesWithCapacity)
{
    const SramEstimate small = estimateSram({16 * 1024, 2, 64, 1, 1});
    const SramEstimate big = estimateSram({256 * 1024, 2, 64, 1, 1});
    EXPECT_LT(small.readEnergy, big.readEnergy);
    EXPECT_LT(small.leakagePerCycle, big.leakagePerCycle);
    EXPECT_LT(small.area, big.area);
}

TEST(Sram, WritesCostMoreThanReads)
{
    const SramEstimate e = estimateSram({});
    EXPECT_GT(e.writeEnergy, e.readEnergy);
}

TEST(Sram, AssocAndPortsCost)
{
    const SramEstimate base = estimateSram({64 * 1024, 2, 64, 1, 1});
    const SramEstimate assoc8 = estimateSram({64 * 1024, 8, 64, 1, 1});
    const SramEstimate ported = estimateSram({64 * 1024, 2, 64, 3, 2});
    EXPECT_GT(assoc8.readEnergy, base.readEnergy);
    EXPECT_GT(ported.leakagePerCycle, base.leakagePerCycle);
    EXPECT_GT(ported.area, base.area);
}

TEST(Energy, PerInstCostGrowsWithCoreSize)
{
    // Fixed event profile: bigger cores must pay more per inst.
    EventCounts ev;
    ev.coreFetches = ev.coreDispatches = ev.coreIssues =
        ev.coreCommits = 1000;
    ev.coreRegReads = 2000;
    ev.coreRegWrites = 1000;
    ev.fuOps[0][0] = 1000;

    double prev = 0;
    for (CoreKind k : {CoreKind::IO2, CoreKind::OOO2, CoreKind::OOO4,
                       CoreKind::OOO6}) {
        const EnergyModel m(coreConfig(k));
        const double e = m.energy(ev, 500);
        EXPECT_GT(e, prev) << coreConfig(k).name;
        prev = e;
    }
}

TEST(Energy, LeakageProportionalToCycles)
{
    const EnergyModel m(coreConfig(CoreKind::OOO2));
    const EventCounts ev;
    const double e1 = m.energy(ev, 1000);
    const double e2 = m.energy(ev, 2000);
    EXPECT_NEAR(e2, 2 * e1, 1e-9);
}

TEST(Energy, FrontendGatingReducesEnergy)
{
    const EnergyModel m(coreConfig(CoreKind::OOO2));
    const EventCounts ev;
    const double all_on = m.energy(ev, 1000, 0);
    const double gated = m.energy(ev, 1000, 800);
    EXPECT_LT(gated, all_on);
    EXPECT_GT(gated, 0.0);
}

TEST(Energy, BreakdownSumsToTotal)
{
    EventCounts ev;
    ev.coreFetches = 100;
    ev.loads = 20;
    ev.branches = 10;
    ev.mispredicts = 2;
    ev.accelConfigs = 1;
    ev.fuOps[1][2] = 30; // CGRA FP ops
    ev.unitInsts[1] = 30;
    const EnergyModel m(coreConfig(CoreKind::OOO4), 4);
    const EnergyBreakdown b = m.breakdown(ev, 500);
    EXPECT_NEAR(b.total(), m.energy(ev, 500), 1e-9);
    EXPECT_GT(b.corePipeline, 0.0);
    EXPECT_GT(b.memory, 0.0);
    EXPECT_GT(b.control, 0.0);
    EXPECT_GT(b.accelerator, 0.0);
    EXPECT_GT(b.leakage, 0.0);
}

TEST(Energy, AttachedBsasLeak)
{
    const EventCounts ev;
    const EnergyModel bare(coreConfig(CoreKind::OOO2), 0);
    const EnergyModel full(coreConfig(CoreKind::OOO2), 4);
    EXPECT_GT(full.energy(ev, 1000), bare.energy(ev, 1000));
}

TEST(Area, CoreOrdering)
{
    EXPECT_LT(coreArea(CoreKind::IO2), coreArea(CoreKind::OOO2));
    EXPECT_LT(coreArea(CoreKind::OOO2), coreArea(CoreKind::OOO4));
    EXPECT_LT(coreArea(CoreKind::OOO4), coreArea(CoreKind::OOO6));
    EXPECT_LT(coreArea(CoreKind::OOO6), coreArea(CoreKind::OOO8));
}

TEST(Area, BsasAreSmallerThanSmallCores)
{
    for (BsaKind b : kAllBsas)
        EXPECT_LT(bsaArea(b), coreArea(CoreKind::IO2));
}

TEST(Area, ExoCoreComposition)
{
    const double bare = exoCoreArea(CoreKind::OOO2, 0);
    EXPECT_DOUBLE_EQ(bare, coreArea(CoreKind::OOO2));
    const double full = exoCoreArea(CoreKind::OOO2, 0xF);
    double expect = coreArea(CoreKind::OOO2);
    for (BsaKind b : kAllBsas)
        expect += bsaArea(b);
    EXPECT_DOUBLE_EQ(full, expect);
}

TEST(Area, HeadlineClaimFullOoo2ExoCoreSmallerThanOoo6)
{
    // Paper Figure 3 / Section 5.2: an OOO2-based ExoCore with three
    // BSAs has ~40% lower area than OOO6 with SIMD.
    const double exo =
        exoCoreArea(CoreKind::OOO2, 0x7); // S + D + N
    const double ooo6 = exoCoreArea(CoreKind::OOO6, 0x1); // + SIMD
    EXPECT_LT(exo, 0.65 * ooo6);
    EXPECT_GT(exo, 0.40 * ooo6);
}

TEST(Area, BsaNamesAndLetters)
{
    EXPECT_EQ(bsaLetter(BsaKind::Simd), 'S');
    EXPECT_EQ(bsaLetter(BsaKind::DpCgra), 'D');
    EXPECT_EQ(bsaLetter(BsaKind::Nsdf), 'N');
    EXPECT_EQ(bsaLetter(BsaKind::Tracep), 'T');
    EXPECT_STREQ(bsaName(BsaKind::Nsdf), "NS-DF");
}

} // namespace
} // namespace prism
