/**
 * @file
 * Static-analysis subsystem tests: hand-crafted invalid guest
 * programs the dataflow analyzer must flag, forged µDG streams and
 * transform outputs the stream verifier must reject, and the positive
 * direction — shipped workloads, their TDGs and every usable BSA
 * transform output lint clean.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/prog_analysis.hh"
#include "analysis/stream_verify.hh"
#include "analysis/tdg_verify.hh"
#include "prog/builder.hh"
#include "prog/verifier.hh"
#include "sim/memory.hh"
#include "tdg/analyzer.hh"
#include "tdg/constructor.hh"
#include "tdg/search.hh"
#include "tdg/transform.hh"
#include "uarch/core_config.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

bool
hasCheck(const std::vector<Diag> &diags, const std::string &check)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&check](const Diag &d) {
                           return d.check == check;
                       });
}

Instr
mkInstr(Opcode op, RegId dst, RegId s0 = kNoReg, RegId s1 = kNoReg)
{
    Instr in;
    in.op = op;
    in.dst = dst;
    in.src = {s0, s1, kNoReg};
    return in;
}

Instr
mkBr(RegId cond, std::int32_t target)
{
    Instr in;
    in.op = Opcode::Br;
    in.src = {cond, kNoReg, kNoReg};
    in.target = target;
    return in;
}

Instr
mkJmp(std::int32_t target)
{
    Instr in;
    in.op = Opcode::Jmp;
    in.target = target;
    return in;
}

// ---------------------------------------------------------------
// Guest-program dataflow analysis
// ---------------------------------------------------------------

TEST(ProgAnalysis, CleanBuilderProgramPasses)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId base = f.arg(0);
    const RegId i = f.reg();
    f.moviTo(i, 0);
    const RegId n = f.movi(16);
    const RegId one = f.movi(1);
    const std::int32_t loop = f.newBlock();
    const std::int32_t done = f.newBlock();
    f.jmp(loop);
    f.setBlock(loop);
    const RegId v = f.ld(base, 0);
    f.st(base, 8, v);
    f.addTo(i, i, one);
    const RegId c = f.cmplt(i, n);
    f.br(c, loop, done);
    f.setBlock(done);
    f.ret(i);
    const Program p = pb.build();

    EXPECT_TRUE(analyzeProgram(p).empty());
}

TEST(ProgAnalysis, FlagsUseBeforeDefOnOnePath)
{
    // bb0 branches on the argument; only the taken side (bb1) defines
    // r1 before the join (bb3) reads it — a maybe-uninitialized read.
    Program p;
    Function fn;
    fn.name = "main";
    fn.numArgs = 1;
    fn.numRegs = 3;
    {
        BasicBlock bb; // bb0
        bb.instrs.push_back(mkBr(0, 1));
        bb.fallthrough = 2;
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb1: defines r1
        bb.instrs.push_back(mkInstr(Opcode::Movi, 1));
        bb.instrs.push_back(mkJmp(3));
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb2: does not define r1
        bb.instrs.push_back(mkInstr(Opcode::Movi, 2));
        bb.instrs.push_back(mkJmp(3));
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb3: reads r1 at the join
        Instr add = mkInstr(Opcode::Add, 2, 1, 0);
        bb.instrs.push_back(add);
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
    }
    p.addFunction(fn);
    p.finalize();

    const auto diags = analyzeProgram(p);
    ASSERT_TRUE(hasCheck(diags, "def-before-use"));
    const auto it = std::find_if(diags.begin(), diags.end(),
                                 [](const Diag &d) {
                                     return d.check == "def-before-use";
                                 });
    // The diagnostic names the exact read site: bb3, instruction 0.
    EXPECT_EQ(it->func, 0);
    EXPECT_EQ(it->block, 3);
    EXPECT_EQ(it->instr, 0);
    EXPECT_NE(it->message.find("r1"), std::string::npos);
}

TEST(ProgAnalysis, AcceptsDefOnAllPaths)
{
    // Same diamond, but both sides define r1: no diagnostic.
    Program p;
    Function fn;
    fn.name = "main";
    fn.numArgs = 1;
    fn.numRegs = 3;
    {
        BasicBlock bb;
        bb.instrs.push_back(mkBr(0, 1));
        bb.fallthrough = 2;
        fn.blocks.push_back(bb);
    }
    for (int side = 0; side < 2; ++side) {
        BasicBlock bb;
        bb.instrs.push_back(mkInstr(Opcode::Movi, 1));
        bb.instrs.push_back(mkJmp(3));
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb;
        bb.instrs.push_back(mkInstr(Opcode::Add, 2, 1, 0));
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
    }
    p.addFunction(fn);
    p.finalize();

    EXPECT_FALSE(hasCheck(analyzeProgram(p), "def-before-use"));
}

TEST(ProgAnalysis, FlagsUnreachableBlock)
{
    Program p;
    Function fn;
    fn.name = "main";
    fn.numArgs = 1;
    fn.numRegs = 1;
    {
        BasicBlock bb; // bb0 returns immediately
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb1: no edge reaches it
        bb.instrs.push_back(mkJmp(0));
        fn.blocks.push_back(bb);
    }
    p.addFunction(fn);
    p.finalize();

    const auto diags = analyzeProgram(p);
    ASSERT_TRUE(hasCheck(diags, "unreachable-block"));
    const auto it = std::find_if(diags.begin(), diags.end(),
                                 [](const Diag &d) {
                                     return d.check ==
                                            "unreachable-block";
                                 });
    EXPECT_EQ(it->block, 1);
}

TEST(ProgAnalysis, FlagsIrreducibleLoop)
{
    // bb0 enters the cycle {bb1, bb2} at two points, so neither node
    // dominates the other: not a natural loop.
    Program p;
    Function fn;
    fn.name = "main";
    fn.numArgs = 1;
    fn.numRegs = 1;
    {
        BasicBlock bb; // bb0
        bb.instrs.push_back(mkBr(0, 2));
        bb.fallthrough = 1;
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb1 -> bb2
        bb.instrs.push_back(mkJmp(2));
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb2 -> bb1 or exit
        bb.instrs.push_back(mkBr(0, 1));
        bb.fallthrough = 3;
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // bb3
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
    }
    p.addFunction(fn);
    p.finalize();

    EXPECT_TRUE(hasCheck(analyzeProgram(p), "irreducible-loop"));
}

TEST(ProgAnalysis, FlagsFunctionWithNoReachableRet)
{
    Program p;
    Function fn;
    fn.name = "main";
    fn.numArgs = 1;
    fn.numRegs = 1;
    {
        BasicBlock bb; // spins forever
        bb.instrs.push_back(mkJmp(0));
        fn.blocks.push_back(bb);
    }
    {
        BasicBlock bb; // the Ret exists but is unreachable
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
    }
    p.addFunction(fn);
    p.finalize();

    const auto diags = analyzeProgram(p);
    EXPECT_TRUE(hasCheck(diags, "no-return"));
    EXPECT_TRUE(hasCheck(diags, "unreachable-block"));
}

TEST(ProgAnalysis, FlagsDeadFunctionAsWarning)
{
    Program p;
    {
        Function fn;
        fn.name = "main";
        fn.numRegs = 1;
        BasicBlock bb;
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
        p.addFunction(fn);
    }
    {
        Function fn;
        fn.name = "never_called";
        fn.numRegs = 1;
        BasicBlock bb;
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
        p.addFunction(fn);
    }
    p.finalize();

    const auto diags = analyzeProgram(p);
    ASSERT_TRUE(hasCheck(diags, "dead-function"));
    EXPECT_EQ(numErrors(diags), 0u); // warning severity only
    const auto it = std::find_if(diags.begin(), diags.end(),
                                 [](const Diag &d) {
                                     return d.check == "dead-function";
                                 });
    EXPECT_FALSE(it->isError());
    EXPECT_EQ(it->func, 1);
    // toString renders the resolved function name.
    EXPECT_NE(toString(*it, &p).find("never_called"),
              std::string::npos);
}

// ---------------------------------------------------------------
// µDG stream verification
// ---------------------------------------------------------------

TEST(StreamVerify, CleanHandBuiltStreamPasses)
{
    MStream s;
    s.push_back(MInst::core(Opcode::Movi));
    MInst add = MInst::core(Opcode::Add);
    add.dep[0] = 0;
    s.push_back(std::move(add));
    EXPECT_TRUE(verifyStream(s).empty());
}

TEST(StreamVerify, FlagsForgedForwardDep)
{
    MStream s;
    MInst a = MInst::core(Opcode::Add);
    a.dep[0] = 5; // points past the end of the stream
    s.push_back(std::move(a));
    s.push_back(MInst::core(Opcode::Nop));

    const auto diags = verifyStream(s);
    ASSERT_TRUE(hasCheck(diags, "dep-bounds"));
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_EQ(diags.front().streamIdx, 0);
}

TEST(StreamVerify, FlagsSelfDependence)
{
    MStream s;
    MInst a = MInst::core(Opcode::Add);
    a.dep[1] = 0; // depends on itself
    s.push_back(std::move(a));
    EXPECT_TRUE(hasCheck(verifyStream(s), "dep-bounds"));
}

TEST(StreamVerify, FlagsForgedSpillHead)
{
    MStream s;
    MInst a = MInst::core(Opcode::Add);
    // Claims more extra deps than the inline slots hold, with a spill
    // head pointing outside the (empty) pool.
    a.numExtraDeps = kInlineExtraDeps + 1;
    a.spillHead = 7;
    s.push_back(std::move(a));
    EXPECT_TRUE(hasCheck(verifyStream(s), "spill-chain"));
}

TEST(StreamVerify, FlagsDanglingSpillHeadWithoutSpilledDeps)
{
    MStream s;
    MInst a = MInst::core(Opcode::Add);
    a.numExtraDeps = 0;
    a.spillHead = 3;
    s.push_back(std::move(a));
    EXPECT_TRUE(hasCheck(verifyStream(s), "spill-chain"));
}

TEST(StreamVerify, AcceptsLegitimateSpillChains)
{
    MStream s;
    for (int i = 0; i < 6; ++i)
        s.push_back(MInst::core(Opcode::Movi));
    MInst sink = MInst::core(Opcode::Add);
    s.push_back(std::move(sink));
    // Five extra deps: two inline, three spilled through the pool.
    for (std::int64_t p = 0; p < 5; ++p)
        s.addExtraDep(6, p, 1);
    EXPECT_EQ(s[6].numExtraDeps, 5u);
    EXPECT_TRUE(verifyStream(s).empty());
}

TEST(StreamVerify, FlagsMemDepOnNonLoad)
{
    MStream s;
    MInst st = MInst::core(Opcode::St);
    st.isStore = true;
    s.push_back(std::move(st));
    MInst add = MInst::core(Opcode::Add);
    add.memDep = 0; // only loads carry memory deps
    s.push_back(std::move(add));
    EXPECT_TRUE(hasCheck(verifyStream(s), "mem-dep"));
}

TEST(StreamVerify, FlagsMemDepOnNonStoreProducer)
{
    MStream s;
    s.push_back(MInst::core(Opcode::Movi)); // not a store
    MInst ld = MInst::core(Opcode::Ld);
    ld.isLoad = true;
    ld.memLat = 4;
    ld.memDep = 0;
    s.push_back(std::move(ld));
    EXPECT_TRUE(hasCheck(verifyStream(s), "mem-dep"));
}

TEST(StreamVerify, FlagsRegDefMismatchAgainstProgram)
{
    // Program: [0] r1 = movi; [1] r2 = movi; [2] r3 = add r1, r1.
    Program p;
    Function fn;
    fn.name = "main";
    fn.numRegs = 4;
    BasicBlock bb;
    bb.instrs.push_back(mkInstr(Opcode::Movi, 1));
    bb.instrs.push_back(mkInstr(Opcode::Movi, 2));
    bb.instrs.push_back(mkInstr(Opcode::Add, 3, 1, 1));
    Instr ret;
    ret.op = Opcode::Ret;
    bb.instrs.push_back(ret);
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();

    MStream s;
    MInst m0 = MInst::core(Opcode::Movi);
    m0.sid = 0;
    s.push_back(std::move(m0));
    MInst m1 = MInst::core(Opcode::Movi);
    m1.sid = 1;
    s.push_back(std::move(m1));
    MInst m2 = MInst::core(Opcode::Add);
    m2.sid = 2;
    m2.dep[0] = 1; // wired to the r2 def, but the add reads r1
    s.push_back(std::move(m2));

    const auto diags = verifyStream(s, &p);
    ASSERT_TRUE(hasCheck(diags, "regdef"));
    const auto it = std::find_if(diags.begin(), diags.end(),
                                 [](const Diag &d) {
                                     return d.check == "regdef";
                                 });
    EXPECT_EQ(it->streamIdx, 2);
    EXPECT_EQ(it->block, 0);
    EXPECT_EQ(it->instr, 2);

    // Rewiring to the r1 def is consistent.
    MStream ok;
    MInst o0 = MInst::core(Opcode::Movi);
    o0.sid = 0;
    ok.push_back(std::move(o0));
    MInst o2 = MInst::core(Opcode::Add);
    o2.sid = 2;
    o2.dep[0] = 0;
    ok.push_back(std::move(o2));
    EXPECT_FALSE(hasCheck(verifyStream(ok, &p), "regdef"));
}

TEST(StreamVerify, FlagsSidOutsideProgram)
{
    Program p;
    Function fn;
    fn.name = "main";
    fn.numRegs = 1;
    BasicBlock bb;
    Instr ret;
    ret.op = Opcode::Ret;
    bb.instrs.push_back(ret);
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();

    MStream s;
    MInst a = MInst::core(Opcode::Add);
    a.sid = 99; // program has a single instruction
    s.push_back(std::move(a));
    EXPECT_TRUE(hasCheck(verifyStream(s, &p), "sid-range"));
}

TEST(StreamVerify, FlagsBrokenOccurrenceBoundaries)
{
    TransformOutput t;
    for (int i = 0; i < 4; ++i)
        t.stream.push_back(MInst::core(Opcode::Nop));
    t.stream[2].startRegion = true;
    t.occBoundaries = {2, 1}; // inverted
    EXPECT_TRUE(hasCheck(verifyTransformOutput(t), "occ-boundaries"));

    t.occBoundaries = {0, 9}; // past the end
    EXPECT_TRUE(hasCheck(verifyTransformOutput(t), "occ-boundaries"));

    t.occBoundaries = {0, 2}; // occurrence 0 lacks a startRegion
    EXPECT_TRUE(hasCheck(verifyTransformOutput(t), "occ-boundaries"));

    t.stream[0].startRegion = true; // now both are marked
    EXPECT_TRUE(verifyTransformOutput(t).empty());
}

// ---------------------------------------------------------------
// TDG / transform legality on shipped workloads
// ---------------------------------------------------------------

TEST(TdgVerify, ShippedWorkloadLintsClean)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics statics(lw->program());

    EXPECT_EQ(numErrors(analyzeProgram(lw->program())), 0u);
    EXPECT_EQ(numErrors(verifyTdg(tdg, analyzer, &statics)), 0u);
    EXPECT_EQ(
        numErrors(verifyStream(buildCoreStream(tdg.trace()),
                               &lw->program())),
        0u);
}

TEST(TdgVerify, AllBsaTransformOutputsVerifyClean)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);

    std::size_t verified = 0;
    for (BsaKind kind : kAllBsas) {
        auto tf = makeTransform(kind, tdg, analyzer);
        for (const Loop &loop : tdg.loops().loops()) {
            if (!analyzer.usable(kind, loop.id) ||
                !tf->canTarget(loop.id)) {
                continue;
            }
            const auto occs = tdg.occurrencesOf(loop.id);
            if (occs.empty())
                continue;
            const TransformOutput out =
                tf->transformLoop(loop.id, occs);
            EXPECT_EQ(numErrors(verifyTransformOutput(
                          out, &lw->program())),
                      0u)
                << bsaName(kind) << " loop " << loop.id;
            ++verified;
        }
    }
    EXPECT_GE(verified, 1u); // conv offloads at least one loop
}

TEST(TdgVerify, CorruptedTransformOutputIsRejected)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);

    auto tf = makeTransform(BsaKind::Simd, tdg, analyzer);
    const Loop *target = nullptr;
    for (const Loop &loop : tdg.loops().loops()) {
        if (analyzer.usable(BsaKind::Simd, loop.id) &&
            tf->canTarget(loop.id) &&
            !tdg.occurrencesOf(loop.id).empty()) {
            target = &loop;
            break;
        }
    }
    ASSERT_NE(target, nullptr);
    TransformOutput out =
        tf->transformLoop(target->id, tdg.occurrencesOf(target->id));
    ASSERT_FALSE(hasErrors(
        verifyTransformOutput(out, &lw->program())));

    // Forge a forward dependence into the otherwise-legal output.
    ASSERT_GE(out.stream.size(), 2u);
    out.stream[0].dep[0] =
        static_cast<std::int32_t>(out.stream.size()) - 1;
    EXPECT_TRUE(hasCheck(verifyTransformOutput(out, &lw->program()),
                         "dep-bounds"));
}

// ---------------------------------------------------------------
// Legality re-derivation at parametric CoreParams points
// ---------------------------------------------------------------

TEST(TdgVerifyAtCore, GridAndSampledPointsVerifyClean)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics statics(lw->program());

    std::vector<CoreParams> points = defaultCoreGrid();
    const auto sampled = sampleCoreParams(8, 0xC0FFEE);
    points.insert(points.end(), sampled.begin(), sampled.end());
    ASSERT_GE(points.size(), 24u);

    for (const CoreParams &core : points) {
        const auto diags =
            verifyTdgAtCore(tdg, analyzer, core, &statics);
        EXPECT_EQ(numErrors(diags), 0u) << coreParamsName(core);
    }
}

TEST(TdgVerifyAtCore, FixedCoreKindsVerifyClean)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);

    for (CoreKind kind : {CoreKind::IO2, CoreKind::OOO1, CoreKind::OOO2,
                          CoreKind::OOO4, CoreKind::OOO6,
                          CoreKind::OOO8}) {
        const auto diags =
            verifyTdgAtCore(tdg, analyzer, coreParams(kind));
        EXPECT_EQ(numErrors(diags), 0u) << coreParamsName(coreParams(kind));
    }
}

TEST(TdgVerifyAtCore, MalformedCorePointsAreRejected)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);

    // An in-order point must not carry ROB entries.
    CoreParams io = coreParams(CoreKind::IO2);
    io.robSize = 32;
    EXPECT_TRUE(hasCheck(verifyTdgAtCore(tdg, analyzer, io),
                         "core-params"));

    // Zero-width machines cannot issue anything.
    CoreParams zero = coreParams(CoreKind::OOO2);
    zero.width = 0;
    EXPECT_TRUE(hasCheck(verifyTdgAtCore(tdg, analyzer, zero),
                         "core-params"));

    // The scheduling window cannot exceed the ROB it drains into.
    CoreParams win = coreParams(CoreKind::OOO2);
    win.instWindow = win.robSize + 1;
    EXPECT_TRUE(hasCheck(verifyTdgAtCore(tdg, analyzer, win),
                         "core-params"));

    // An L2 faster than the L1 in front of it is a config typo.
    CoreParams l2 = coreParams(CoreKind::OOO4);
    l2.l2HitLatency = l2.l1HitLatency - 1;
    EXPECT_TRUE(hasCheck(verifyTdgAtCore(tdg, analyzer, l2),
                         "core-params"));
}

TEST(TdgVerifyAtCore, WideSimdLanesWarnOnShortTrips)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer analyzer(tdg);

    bool anySimd = false;
    for (const Loop &loop : tdg.loops().loops())
        anySimd |= analyzer.usable(BsaKind::Simd, loop.id);
    if (!anySimd)
        GTEST_SKIP() << "conv offloads no SIMD loop at this budget";

    // Absurdly wide vectors: every SIMD loop's trip count is below
    // the lane count, so the warning must fire (still zero errors).
    CoreParams wide = coreParams(CoreKind::OOO4);
    wide.simdLanes = 1u << 20;
    const auto diags = verifyTdgAtCore(tdg, analyzer, wide);
    EXPECT_EQ(numErrors(diags), 0u);
    EXPECT_TRUE(hasCheck(diags, "simd-lanes-trip"));
}

// ---------------------------------------------------------------
// Machine-readable diagnostics (prism_lint --json)
// ---------------------------------------------------------------

TEST(DiagJson, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("line\nfeed\ttab\rcr"),
              "line\\nfeed\\ttab\\rcr");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "byte"),
              "nul\\u0001byte");
}

TEST(DiagJson, OmitsUnknownCoordinates)
{
    Diag d;
    d.severity = Diag::Severity::Warning;
    d.check = "behavior-simd";
    d.message = "loop 3: \"unknown\"";
    EXPECT_EQ(toJson(d),
              "{\"severity\":\"warning\",\"check\":\"behavior-simd\","
              "\"message\":\"loop 3: \\\"unknown\\\"\"}");
}

TEST(DiagJson, EmitsCoordinatesAndResolvedFunctionName)
{
    ProgramBuilder pb;
    auto &f = pb.func("kernel_fn", 0);
    f.ret(f.movi(0));
    const Program p = pb.build();

    Diag d;
    d.severity = Diag::Severity::Error;
    d.check = "simd-legal";
    d.func = 0;
    d.block = 2;
    d.instr = 5;
    d.loop = 1;
    d.message = "m";
    EXPECT_EQ(toJson(d, &p),
              "{\"severity\":\"error\",\"check\":\"simd-legal\","
              "\"func\":0,\"func_name\":\"kernel_fn\",\"block\":2,"
              "\"instr\":5,\"loop\":1,\"message\":\"m\"}");

    // Without a program the name is absent; out-of-range func too.
    EXPECT_EQ(toJson(d).find("func_name"), std::string::npos);
    d.func = 7;
    EXPECT_EQ(toJson(d, &p).find("func_name"), std::string::npos);

    Diag s;
    s.check = "dep-bounds";
    s.streamIdx = 42;
    s.message = "m";
    EXPECT_NE(toJson(s).find("\"stream_idx\":42"), std::string::npos);
}

TEST(TdgVerify, MicrobenchSuiteHasNoAnalysisErrors)
{
    for (const WorkloadSpec &spec : microbenchmarks()) {
        ProgramBuilder pb;
        SimMemory mem;
        std::vector<std::int64_t> args;
        spec.build(pb, mem, args);
        const Program p = pb.build();
        EXPECT_EQ(numErrors(analyzeProgram(p)), 0u) << spec.name;
    }
}

} // namespace
} // namespace prism
