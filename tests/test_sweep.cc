/**
 * @file
 * Tests for the sharded design-space sweep driver (tdg/sweep.hh):
 * shard partitioning is exact (every grid point in exactly one
 * shard), grid order is the documented core-major/mask-minor
 * sequence, and the rendered table is byte-identical across thread
 * counts — the determinism contract the benches' serial-vs-parallel
 * check relies on. Labeled `concurrency` so `ctest -L concurrency`
 * (typically under -DPRISM_SANITIZE=thread) covers the sweep's
 * parallel phases too.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tdg/sweep.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

std::span<const WorkloadSpec>
convOnly()
{
    static const std::vector<WorkloadSpec> wls{findWorkload("conv")};
    return wls;
}

TEST(Sweep, ShardsPartitionTheGridExactly)
{
    SweepGrid base;
    base.cores = {CoreKind::IO2, CoreKind::OOO2, CoreKind::OOO4};
    const std::size_t total = sweepGridSize(base);
    ASSERT_EQ(total, base.cores.size() * base.numMasks);

    for (unsigned count : {1u, 2u, 3u, 4u, 5u}) {
        std::vector<int> seen(total, 0);
        for (unsigned s = 0; s < count; ++s) {
            SweepGrid grid = base;
            grid.shardIndex = s;
            grid.shardCount = count;
            DesignSpaceSweep sweep(grid, convOnly());
            for (const SweepPoint &p : sweep.shardPoints()) {
                ASSERT_LT(p.gridIndex, total);
                ASSERT_EQ(p.gridIndex % count, s);
                // Grid order: core-major, mask-minor.
                ASSERT_EQ(p.core,
                          base.cores[p.gridIndex / base.numMasks]);
                ASSERT_EQ(p.mask, p.gridIndex % base.numMasks);
                ++seen[p.gridIndex];
            }
        }
        for (std::size_t gi = 0; gi < total; ++gi)
            ASSERT_EQ(seen[gi], 1)
                << "grid point " << gi << " at shardCount " << count;
    }
}

TEST(Sweep, ShardCoresAlwaysIncludeTheReference)
{
    SweepGrid grid;
    grid.cores = {CoreKind::OOO2};
    grid.refCore = CoreKind::IO2;
    DesignSpaceSweep sweep(grid, convOnly());
    const std::vector<CoreKind> cores = sweep.shardCores();
    ASSERT_EQ(cores.size(), 2u);
    // kAllCoreKinds order: the reference comes first here.
    EXPECT_EQ(cores[0], CoreKind::IO2);
    EXPECT_EQ(cores[1], CoreKind::OOO2);
}

TEST(Sweep, RoundRobinShardingSpreadsCoresAcrossShards)
{
    // With numMasks shards, shard s holds exactly mask s of every
    // core — each shard touches every core, so one expensive core
    // cannot land entirely on one shard.
    SweepGrid grid;
    grid.cores = {CoreKind::IO2, CoreKind::OOO2};
    grid.shardCount = grid.numMasks;
    grid.shardIndex = 5;
    DesignSpaceSweep sweep(grid, convOnly());
    const std::vector<SweepPoint> points = sweep.shardPoints();
    ASSERT_EQ(points.size(), grid.cores.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].core, grid.cores[i]);
        EXPECT_EQ(points[i].mask, 5u);
    }
}

TEST(Sweep, TableByteIdenticalAcrossThreadCounts)
{
    // The acceptance property of the whole subsystem: identical
    // rendered tables at 1 and 4 contexts, and a shard pair that
    // partitions the same points the unsharded run produces.
    setMaxInstsOverride(30'000);

    SweepGrid grid;
    grid.cores = {CoreKind::IO2, CoreKind::OOO2};
    DesignSpaceSweep sweep(grid, convOnly());

    ThreadPool serial(1);
    ThreadPool wide(4);
    sweep.prepare(serial);
    const std::string table_serial =
        renderSweepTable(sweep.run(serial));
    sweep.dropModels();
    sweep.prepare(wide);
    const std::string table_wide = renderSweepTable(sweep.run(wide));
    EXPECT_EQ(table_serial, table_wide);

    // Two half-shards evaluated in parallel cover the same grid: the
    // union of their points, re-rendered, matches the full table.
    std::vector<SweepPoint> merged;
    for (unsigned s = 0; s < 2; ++s) {
        SweepGrid half = grid;
        half.shardIndex = s;
        half.shardCount = 2;
        DesignSpaceSweep part(half, convOnly());
        part.prepare(wide);
        for (SweepPoint &p : part.run(wide))
            merged.push_back(std::move(p));
    }
    EXPECT_EQ(renderSweepTable(std::move(merged)), table_serial);

    setMaxInstsOverride(0);
}

} // namespace
} // namespace prism
