/**
 * @file
 * Tests for the discrete-event reference simulator and the
 * validation harness invariants: agreement bounds with the µDG model
 * on simple streams (where both are exact), sanity on complex ones,
 * and correct handling of accelerator-context operations.
 */

#include <gtest/gtest.h>

#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "tdg/reference/tick_sim.hh"
#include "tdg/transform.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

MInst
aluInst(std::int64_t dep = -1)
{
    MInst mi = MInst::core(Opcode::Add);
    if (dep >= 0)
        mi.dep[0] = dep;
    return mi;
}

TEST(CycleSim, EmptyStream)
{
    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    EXPECT_EQ(sim.run({}), 0u);
}

TEST(CycleSim, SerialChainMatchesLatency)
{
    MStream s;
    for (int i = 0; i < 50; ++i)
        s.push_back(aluInst(i - 1));
    const CycleCoreSim sim(coreConfig(CoreKind::OOO4));
    const Cycle c = sim.run(s);
    EXPECT_GE(c, 50u);
    EXPECT_LE(c, 70u);
}

TEST(CycleSim, WidthBoundsIndependentWork)
{
    MStream s;
    for (int i = 0; i < 400; ++i)
        s.push_back(aluInst());
    const CycleCoreSim sim2(coreConfig(CoreKind::OOO2));
    const CycleCoreSim sim6(coreConfig(CoreKind::OOO6));
    EXPECT_GT(sim2.run(s), sim6.run(s));
}

TEST(CycleSim, MispredictGatesFetch)
{
    MStream clean;
    MStream dirty;
    for (int i = 0; i < 50; ++i) {
        MInst br = MInst::core(Opcode::Br);
        clean.push_back(br);
        br.mispredicted = true;
        dirty.push_back(br);
        for (int k = 0; k < 3; ++k) {
            clean.push_back(aluInst());
            dirty.push_back(aluInst());
        }
    }
    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    EXPECT_GT(sim.run(dirty), sim.run(clean) + 50 * 8);
}

TEST(CycleSim, TakenBranchBreaksFetchGroup)
{
    // Wide core on a stream of taken branches: one fetch group per
    // branch limits throughput to ~1 inst/cycle pairs.
    MStream s;
    for (int i = 0; i < 200; ++i) {
        MInst j = MInst::core(Opcode::Jmp);
        j.takenBranch = true;
        s.push_back(j);
        s.push_back(aluInst());
    }
    const CycleCoreSim sim(coreConfig(CoreKind::OOO6));
    EXPECT_GE(sim.run(s), 200u);
}

TEST(CycleSim, EngineOpsBypassTheFrontend)
{
    MStream s;
    for (int i = 0; i < 300; ++i) {
        MInst mi;
        mi.op = Opcode::CfuOp;
        mi.unit = ExecUnit::Nsdf;
        mi.fu = FuClass::IntAlu;
        mi.lat = 1;
        s.push_back(mi);
    }
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2); // width 2
    const CycleCoreSim sim(cfg);
    // Issue width 6 / bus 3 beat the 2-wide core's frontend easily.
    EXPECT_LT(sim.run(s), 300u / 2);
}

TEST(CycleSim, RegionBoundaryDrainsMachine)
{
    MStream s;
    MInst ld = MInst::core(Opcode::Ld);
    ld.memLat = 150;
    s.push_back(ld);
    MInst next = aluInst();
    next.startRegion = true;
    s.push_back(next);
    const CycleCoreSim sim(coreConfig(CoreKind::OOO4));
    EXPECT_GE(sim.run(s), 150u);
}

/** Agreement between the two timing implementations on baselines. */
class ModelAgreement : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ModelAgreement, WithinTolerance)
{
    const auto lw =
        LoadedWorkload::load(findWorkload(GetParam()), 80'000);
    const MStream s = buildCoreStream(lw->tdg().trace());
    for (CoreKind k : {CoreKind::IO2, CoreKind::OOO2,
                       CoreKind::OOO6}) {
        PipelineConfig cfg;
        cfg.core = coreConfig(k);
        const Cycle proj = PipelineModel(cfg).run(s).cycles;
        const Cycle ref = CycleCoreSim(cfg).run(s);
        const double err =
            std::abs(static_cast<double>(proj) /
                         static_cast<double>(ref) -
                     1.0);
        EXPECT_LT(err, 0.20)
            << GetParam() << " on " << cfg.core.name << ": "
            << proj << " vs " << ref;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ModelAgreement,
                         ::testing::Values("conv", "merge",
                                           "181.mcf", "cjpeg-1",
                                           "mem-stream",
                                           "branch-rand"));

/** Run the event-driven engine windowed with fixed-size feeds. */
Cycle
runWindowed(const CycleCoreSim &sim, const MStream &s,
            std::size_t window, RefSimScratch &ss)
{
    sim.begin(ss);
    for (std::size_t b = 0; b < s.size(); b += window)
        sim.feed(ss, s, b, std::min(b + window, s.size()));
    return sim.finishRun(ss, s);
}

/**
 * Differential oracle: the event-driven engine must be
 * cycle-identical to the preserved tick-every-cycle simulator on
 * every core config, whole-stream and under every windowing, across
 * workloads spanning the suite's behavior classes (regular compute,
 * irregular control, pointer-chasing memory, media, streaming,
 * branch-random).
 */
class TickOracle : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TickOracle, CycleIdentical)
{
    const auto lw =
        LoadedWorkload::load(findWorkload(GetParam()), 30'000);
    const MStream s = buildCoreStream(lw->tdg().trace());
    RefSimScratch ss;
    TickSimScratch ts;
    for (CoreKind k : kAllCoreKinds) {
        PipelineConfig cfg;
        cfg.core = coreConfig(k);
        const CycleCoreSim sim(cfg);
        const TickCycleCoreSim tick(cfg);
        const Cycle want = tick.run(s, ts);
        EXPECT_EQ(sim.run(s, ss), want)
            << GetParam() << " on " << cfg.core.name;
        for (std::size_t w : {std::size_t{1}, std::size_t{7},
                              std::size_t{10000}}) {
            EXPECT_EQ(runWindowed(sim, s, w, ss), want)
                << GetParam() << " on " << cfg.core.name
                << " window=" << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, TickOracle,
                         ::testing::Values("conv", "merge",
                                           "181.mcf", "cjpeg-1",
                                           "mem-stream",
                                           "branch-rand"));

TEST(TickOracle, TransformedStreamsCycleIdentical)
{
    // Engine pools, writeback-bus contention and region drains:
    // every BSA's transformed stream must also match the oracle.
    const auto lw = LoadedWorkload::load(findWorkload("conv"));
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer an(tdg);
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO4);
    const CycleCoreSim sim(cfg);
    const TickCycleCoreSim tick(cfg);
    RefSimScratch ss;
    TickSimScratch ts;

    for (BsaKind bsa : kAllBsas) {
        auto tf = makeTransform(bsa, tdg, an);
        for (const Loop &loop : tdg.loops().loops()) {
            if (!tf->canTarget(loop.id))
                continue;
            const TransformOutput out = tf->transformLoop(
                loop.id, tdg.occurrencesOf(loop.id));
            if (out.stream.empty())
                continue;
            const Cycle want = tick.run(out.stream, ts);
            EXPECT_EQ(sim.run(out.stream, ss), want)
                << bsaName(bsa);
            EXPECT_EQ(runWindowed(sim, out.stream, 7, ss), want)
                << bsaName(bsa) << " windowed";
        }
    }
}

TEST(ModelAgreementAccel, TransformedStreamsAgree)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"));
    const Tdg &tdg = lw->tdg();
    const TdgAnalyzer an(tdg);
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO4);
    const PipelineModel model(cfg);
    const CycleCoreSim sim(cfg);

    for (BsaKind bsa : kAllBsas) {
        auto tf = makeTransform(bsa, tdg, an);
        for (const Loop &loop : tdg.loops().loops()) {
            if (!tf->canTarget(loop.id))
                continue;
            const TransformOutput out = tf->transformLoop(
                loop.id, tdg.occurrencesOf(loop.id));
            if (out.stream.empty())
                continue;
            const Cycle proj = model.run(out.stream).cycles;
            const Cycle ref = sim.run(out.stream);
            const double err =
                std::abs(static_cast<double>(proj) /
                             static_cast<double>(ref) -
                         1.0);
            EXPECT_LT(err, 0.35) << bsaName(bsa);
        }
    }
}

} // namespace
} // namespace prism
