/**
 * @file
 * End-to-end integration tests: the full pipeline from workload
 * construction through trace generation, TDG construction, ExoCore
 * composition, and design-space properties that the paper's
 * evaluation depends on.
 */

#include <gtest/gtest.h>

#include "energy/area_model.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

const LoadedWorkload &
workload(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<LoadedWorkload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, LoadedWorkload::load(
                                    findWorkload(name), 150'000))
                 .first;
    }
    return *it->second;
}

TEST(Integration, DeterministicAcrossLoads)
{
    // Two independent loads of the same workload produce identical
    // traces and identical evaluation results.
    const auto a = LoadedWorkload::load(findWorkload("radar"));
    const auto b = LoadedWorkload::load(findWorkload("radar"));
    ASSERT_EQ(a->tdg().trace().size(), b->tdg().trace().size());
    for (DynId i = 0; i < a->tdg().trace().size(); i += 97) {
        EXPECT_EQ(a->tdg().trace()[i].sid, b->tdg().trace()[i].sid);
        EXPECT_EQ(a->tdg().trace()[i].memLat,
                  b->tdg().trace()[i].memLat);
    }
    const BenchmarkModel ma(a->tdg(), CoreKind::OOO2);
    const BenchmarkModel mb(b->tdg(), CoreKind::OOO2);
    EXPECT_EQ(ma.evaluate(kFullBsaMask).cycles,
              mb.evaluate(kFullBsaMask).cycles);
}

/** The 16 BSA subsets behave like a lattice under the oracle. */
TEST(Integration, MaskLatticeMonotoneEdp)
{
    const BenchmarkModel bm(workload("cjpeg-1").tdg(),
                            CoreKind::OOO2);
    std::array<double, 16> edp{};
    for (unsigned mask = 0; mask < 16; ++mask) {
        const ExoResult r = bm.evaluate(mask);
        edp[mask] = static_cast<double>(r.cycles) * r.energy;
    }
    // Adding a BSA can only improve (or not change) oracle EDP.
    for (unsigned mask = 0; mask < 16; ++mask) {
        for (unsigned bit = 0; bit < 4; ++bit) {
            const unsigned super = mask | (1u << bit);
            if (super == mask)
                continue;
            EXPECT_LE(edp[super], edp[mask] * 1.0001)
                << "mask " << mask << " + bit " << bit;
        }
    }
}

TEST(Integration, CoreSweepEveryMaskRuns)
{
    const BenchmarkModel bm(workload("stencil").tdg(),
                            CoreKind::IO2);
    for (unsigned mask = 0; mask < 16; ++mask) {
        const ExoResult r = bm.evaluate(mask);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.energy, 0.0);
        Cycle sum = 0;
        for (int u = 0; u < kNumUnits; ++u)
            sum += r.unitCycles[u];
        EXPECT_EQ(sum, r.cycles);
    }
}

TEST(Integration, EnergyEfficiencyFrontierShape)
{
    // The paper's central qualitative claim: for the same core, the
    // full ExoCore strictly dominates the bare core in energy while
    // not losing performance.
    for (const char *name : {"conv", "cjpeg-1", "445.gobmk"}) {
        const BenchmarkModel bm(workload(name).tdg(),
                                CoreKind::OOO2);
        const ExoResult exo = bm.evaluate(kFullBsaMask);
        const ExoResult &base = bm.baseline();
        EXPECT_LE(exo.energy, base.energy) << name;
        EXPECT_LE(static_cast<double>(exo.cycles),
                  1.10 * static_cast<double>(base.cycles))
            << name;
    }
}

TEST(Integration, OffloadEnginesReportGatedCycles)
{
    const BenchmarkModel bm(workload("cutcp").tdg(),
                            CoreKind::OOO2);
    bool saw_gated = false;
    for (const Loop &loop : workload("cutcp").tdg().loops().loops()) {
        const RegionUnitEval &ev =
            bm.unitEval(loop.id, unitIndex(BsaKind::Nsdf));
        if (ev.feasible && ev.gatedCycles > 0)
            saw_gated = true;
    }
    EXPECT_TRUE(saw_gated);
}

TEST(Integration, AreaPerfEnergyParetoHasExoCorePoints)
{
    // Mini design-space: verify at least one ExoCore point
    // dominates a bigger bare core on all three axes for a regular
    // workload (the Figure 3 frontier push).
    const BenchmarkModel small(workload("mm").tdg(), CoreKind::OOO2);
    const BenchmarkModel big(workload("mm").tdg(), CoreKind::OOO6);
    const ExoResult exo = small.evaluate(kFullBsaMask);
    const ExoResult &ooo6 = big.baseline();
    const double exo_area = exoCoreArea(CoreKind::OOO2, kFullBsaMask);
    const double ooo6_area = exoCoreArea(CoreKind::OOO6, 0);
    EXPECT_LT(exo_area, ooo6_area);
    EXPECT_LT(exo.energy, ooo6.energy);
    // Performance within striking distance (paper: matches).
    EXPECT_LT(static_cast<double>(exo.cycles),
              2.0 * static_cast<double>(ooo6.cycles));
}

TEST(Integration, TimelineConsistentWithAggregate)
{
    const BenchmarkModel bm(workload("cjpeg-1").tdg(),
                            CoreKind::OOO2);
    const ExoResult exo = bm.evaluate(kFullBsaMask);
    const auto points = bm.timeline(kFullBsaMask);
    // Summed accelerated cycles across the timeline match the
    // non-GPP unit attribution (up to per-occurrence boundary
    // rounding in the commit-delta accounting).
    Cycle exo_sum = 0;
    for (const TimelinePoint &tp : points)
        exo_sum += tp.exoCycles;
    Cycle unit_sum = 0;
    for (int u = 1; u < kNumUnits; ++u)
        unit_sum += exo.unitCycles[u];
    EXPECT_NEAR(static_cast<double>(exo_sum),
                static_cast<double>(unit_sum),
                0.01 * static_cast<double>(unit_sum) + 64.0);
}

} // namespace
} // namespace prism
