/**
 * @file
 * Unit tests for the IR reconstruction passes: CFG, dominators, loop
 * forest, trace-loop mapping, Ball-Larus path profiling, memory
 * profiling, and induction/reduction classification.
 */

#include <gtest/gtest.h>

#include "ir/cfg.hh"
#include "ir/dfg.hh"
#include "ir/dominators.hh"
#include "ir/induction.hh"
#include "ir/loops.hh"
#include "ir/mem_profile.hh"
#include "ir/path_profile.hh"
#include "sim/trace_gen.hh"
#include "workloads/kernel_util.hh"

namespace prism
{
namespace
{

/** A diamond inside a loop:
 *  bb0 -> bb1(header) -> bb2 -> {bb3|bb4} -> bb5(latch) -> bb1|bb6 */
Program
diamondLoopProgram()
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId base = f.arg(0);
    const RegId acc = f.reg();
    const RegId i = f.reg();
    f.moviTo(acc, 0);
    f.moviTo(i, 0);
    const RegId n = f.movi(64);
    const RegId one = f.movi(1);
    const RegId eight = f.movi(8);

    const std::int32_t header = f.newBlock();
    const std::int32_t then_b = f.newBlock();
    const std::int32_t else_b = f.newBlock();
    const std::int32_t latch = f.newBlock();
    const std::int32_t exit_b = f.newBlock();

    f.jmp(header);
    f.setBlock(header);
    const RegId v = f.ld(f.add(base, f.mul(i, eight)), 0);
    const RegId c = f.cmplt(v, f.movi(50));
    f.br(c, then_b, else_b);

    f.setBlock(then_b);
    f.addTo(acc, acc, v);
    f.jmp(latch);

    f.setBlock(else_b);
    f.addTo(acc, acc, one);
    f.jmp(latch);

    f.setBlock(latch);
    f.addTo(i, i, one);
    const RegId more = f.cmplt(i, n);
    f.br(more, header, exit_b);

    f.setBlock(exit_b);
    f.ret(acc);
    return pb.build();
}

Trace
traceOf(const Program &p, SimMemory &mem,
        const std::vector<std::int64_t> &args)
{
    Trace trace(&p);
    generateTrace(p, mem, args, trace);
    return trace;
}

TEST(Cfg, DiamondStructure)
{
    const Program p = diamondLoopProgram();
    const Cfg cfg = Cfg::reconstruct(p, 0);
    ASSERT_EQ(cfg.numNodes(), 6u);
    // bb1 (header) has two successors.
    EXPECT_EQ(cfg.node(1).succs.size(), 2u);
    // bb4 (latch) branches to header and exit.
    EXPECT_EQ(cfg.node(4).succs.size(), 2u);
    // Header has two predecessors: entry and latch.
    EXPECT_EQ(cfg.node(1).preds.size(), 2u);
    // Entry first in RPO.
    EXPECT_EQ(cfg.rpo().front(), 0);
    EXPECT_EQ(cfg.rpoIndex(0), 0);
}

TEST(Cfg, DotOutputNonEmpty)
{
    const Program p = diamondLoopProgram();
    const Cfg cfg = Cfg::reconstruct(p, 0);
    EXPECT_NE(cfg.toDot().find("bb1 -> "), std::string::npos);
}

TEST(Dominators, DiamondDominance)
{
    const Program p = diamondLoopProgram();
    const Cfg cfg = Cfg::reconstruct(p, 0);
    const Dominators dom = Dominators::compute(cfg);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 1);
    EXPECT_EQ(dom.idom(3), 1);
    EXPECT_EQ(dom.idom(4), 1); // latch's idom is the header
    EXPECT_TRUE(dom.dominates(1, 4));
    EXPECT_FALSE(dom.dominates(2, 4));
    EXPECT_TRUE(dom.dominates(0, 5));
    EXPECT_EQ(dom.depth(0), 0);
    EXPECT_GT(dom.depth(4), dom.depth(1));
}

TEST(Loops, DetectsDiamondLoop)
{
    const Program p = diamondLoopProgram();
    const LoopForest forest = LoopForest::build(p);
    ASSERT_EQ(forest.numLoops(), 1u);
    const Loop &loop = forest.loop(0);
    EXPECT_EQ(loop.header, 1);
    EXPECT_TRUE(loop.innermost);
    EXPECT_EQ(loop.depth, 1);
    EXPECT_EQ(loop.blocks.size(), 4u); // header, then, else, latch
    EXPECT_EQ(loop.latches.size(), 1u);
    EXPECT_EQ(loop.latches.front(), 4);
    EXPECT_FALSE(loop.containsCall);
    EXPECT_TRUE(loop.containsBlock(2));
    EXPECT_FALSE(loop.containsBlock(5));
}

TEST(Loops, NestedLoopStructure)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 10, 1, [&](RegId i) {
        countedLoop(f, 0, 10, 1,
                    [&](RegId j) { f.addTo(acc, acc, j); });
        f.addTo(acc, acc, i);
    });
    f.ret(acc);
    const Program p = pb.build();
    const LoopForest forest = LoopForest::build(p);
    ASSERT_EQ(forest.numLoops(), 2u);
    std::int32_t outer = -1;
    std::int32_t inner = -1;
    for (const Loop &loop : forest.loops()) {
        if (loop.parent == -1)
            outer = loop.id;
        else
            inner = loop.id;
    }
    ASSERT_NE(outer, -1);
    ASSERT_NE(inner, -1);
    EXPECT_EQ(forest.loop(inner).parent, outer);
    EXPECT_EQ(forest.loop(inner).depth, 2);
    EXPECT_FALSE(forest.loop(outer).innermost);
    EXPECT_TRUE(forest.nestedIn(inner, outer));
    EXPECT_FALSE(forest.nestedIn(outer, inner));
    EXPECT_EQ(forest.roots().size(), 1u);
}

TEST(Loops, TraceMappingCountsIterations)
{
    const Program p = diamondLoopProgram();
    SimMemory mem;
    Rng rng(5);
    fillI64(mem, 0x4000, 64, rng, 0, 100);
    const Trace trace = traceOf(p, mem, {0x4000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    ASSERT_EQ(map.occurrences.size(), 1u);
    EXPECT_EQ(map.occurrences[0].numIters(), 64u);
    // Instructions before the loop are unmapped.
    EXPECT_EQ(map.loopOf[0], -1);
    // Header instructions are mapped.
    bool saw_mapped = false;
    for (DynId i = 0; i < trace.size(); ++i)
        saw_mapped |= map.loopOf[i] == 0;
    EXPECT_TRUE(saw_mapped);
}

TEST(Loops, CalleeInstructionsInheritLoop)
{
    ProgramBuilder pb;
    auto &leaf = pb.func("leaf", 1);
    leaf.ret(leaf.add(leaf.arg(0), leaf.movi(1)));
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 8, 1, [&](RegId) {
        const RegId r = f.call(leaf.id(), {acc});
        f.movTo(acc, r);
    });
    f.ret(acc);
    const Program p = pb.build();
    SimMemory mem;
    const Trace trace = traceOf(p, mem, {});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    ASSERT_EQ(forest.numLoops(), 1u);
    // Callee instructions carry the caller's loop id.
    bool callee_mapped = false;
    for (DynId i = 0; i < trace.size(); ++i) {
        if (p.funcOf(trace[i].sid) == leaf.id() &&
            map.loopOf[i] == 0) {
            callee_mapped = true;
        }
    }
    EXPECT_TRUE(callee_mapped);
    EXPECT_TRUE(forest.loop(0).containsCall);
}

TEST(PathProfile, BallLarusCountsDiamondPaths)
{
    const Program p = diamondLoopProgram();
    const Cfg cfg = Cfg::reconstruct(p, 0);
    const LoopForest forest = LoopForest::build(p);
    const BallLarusDag dag(p, cfg, forest.loop(0));
    // Two acyclic paths through the body... times two terminating
    // edges at the latch (back edge vs exit) = 4 numbered paths.
    EXPECT_EQ(dag.numPaths(), 4u);
    // Decode round-trip: every id yields a block sequence starting at
    // the header.
    for (std::uint64_t id = 0; id < dag.numPaths(); ++id) {
        const auto blocks = dag.decode(id);
        ASSERT_FALSE(blocks.empty());
        EXPECT_EQ(blocks.front(), forest.loop(0).header);
    }
}

TEST(PathProfile, FrequenciesMatchData)
{
    const Program p = diamondLoopProgram();
    SimMemory mem;
    // All values < 50: the then-path is always taken.
    Rng rng(6);
    fillI64(mem, 0x4000, 64, rng, 0, 40);
    const Trace trace = traceOf(p, mem, {0x4000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto profiles = profilePaths(p, trace, forest, map);
    ASSERT_EQ(profiles.size(), 1u);
    const PathProfile &prof = profiles[0];
    EXPECT_EQ(prof.totalIters, 64u);
    EXPECT_EQ(prof.backEdgeTaken, 63u);
    ASSERT_NE(prof.hottest(), nullptr);
    EXPECT_GE(prof.hotPathFraction(), 63.0 / 64.0 - 1e-9);
    // The hot path visits the then-block (bb2).
    const auto &blocks = prof.hottest()->blocks;
    EXPECT_NE(std::find(blocks.begin(), blocks.end(), 2),
              blocks.end());
    EXPECT_NEAR(prof.loopBackProbability(), 63.0 / 64.0, 1e-9);
}

TEST(PathProfile, MixedDataSplitsPaths)
{
    const Program p = diamondLoopProgram();
    SimMemory mem;
    Rng rng(7);
    fillI64(mem, 0x4000, 64, rng, 0, 100); // ~50/50 split
    const Trace trace = traceOf(p, mem, {0x4000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto profiles = profilePaths(p, trace, forest, map);
    const PathProfile &prof = profiles[0];
    EXPECT_GE(prof.paths.size(), 2u);
    EXPECT_LT(prof.hotPathFraction(), 0.9);
}

TEST(MemProfile, DetectsUnitStride)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 2);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, 64, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId v = f.ld(f.add(f.arg(0), off), 0);
        f.st(f.add(f.arg(1), off), 0, v);
    });
    f.retVoid();
    const Program p = pb.build();
    SimMemory mem;
    const Trace trace = traceOf(p, mem, {0x4000, 0x8000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto profiles = profileMemory(p, trace, forest, map);
    const LoopMemProfile &prof = profiles[0];
    ASSERT_EQ(prof.accesses.size(), 2u);
    for (const MemAccessPattern &a : prof.accesses) {
        EXPECT_TRUE(a.strideKnown);
        EXPECT_EQ(a.stride, 8);
        EXPECT_TRUE(a.contiguous());
    }
    EXPECT_FALSE(prof.loopCarriedStoreToLoad);
    EXPECT_NEAR(prof.contiguousFraction(), 1.0, 1e-9);
}

TEST(MemProfile, DetectsLoopCarriedStoreToLoad)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    // a[i+1] = a[i] + 1: store feeds next iteration's load.
    countedLoop(f, 0, 64, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId pa = f.add(f.arg(0), off);
        const RegId v = f.ld(pa, 0);
        f.st(pa, 8, f.addi(v, 1));
    });
    f.retVoid();
    const Program p = pb.build();
    SimMemory mem;
    const Trace trace = traceOf(p, mem, {0x4000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto profiles = profileMemory(p, trace, forest, map);
    EXPECT_TRUE(profiles[0].loopCarriedStoreToLoad);
}

TEST(MemProfile, RandomAccessHasUnknownStride)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 2);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, 64, 1, [&](RegId i) {
        const RegId idx =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        const RegId v =
            f.ld(f.add(f.arg(1), f.mul(idx, eight)), 0);
        (void)v;
    });
    f.retVoid();
    const Program p = pb.build();
    SimMemory mem;
    Rng rng(8);
    fillI64(mem, 0x4000, 64, rng, 0, 1000);
    const Trace trace = traceOf(p, mem, {0x4000, 0x40000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto profiles = profileMemory(p, trace, forest, map);
    bool found_unknown = false;
    for (const MemAccessPattern &a : profiles[0].accesses)
        found_unknown |= !a.strideKnown;
    EXPECT_TRUE(found_unknown);
}

TEST(Induction, ClassifiesInductionAndReduction)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.fmoviTo(acc, 0.0);
    countedLoop(f, 0, 64, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        f.faddTo(acc, acc, v); // reduction
    });
    f.ret(f.cvtfi(acc));
    const Program p = pb.build();
    SimMemory mem;
    Rng rng(9);
    fillF64(mem, 0x4000, 64, rng);
    const Trace trace = traceOf(p, mem, {0x4000});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto dfgs = buildAllDfgs(p);
    const auto profiles = profileDeps(p, trace, forest, map, dfgs);
    const LoopDepProfile &prof = profiles[0];
    EXPECT_EQ(prof.inductions.size(), 1u); // the counter
    EXPECT_EQ(prof.reductions.size(), 1u); // the accumulator
    EXPECT_FALSE(prof.otherRecurrence);
    EXPECT_TRUE(prof.vectorizableDeps());
    EXPECT_GT(prof.carriedDeps, 0u);
}

TEST(Induction, FlagsGeneralRecurrence)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId x = f.reg();
    const RegId y = f.reg();
    f.moviTo(x, 1);
    f.moviTo(y, 1);
    // Fibonacci-style cross recurrence: not vectorizable.
    countedLoop(f, 0, 64, 1, [&](RegId) {
        const RegId t = f.add(x, y);
        f.movTo(x, y);
        f.movTo(y, t);
    });
    f.ret(y);
    const Program p = pb.build();
    SimMemory mem;
    const Trace trace = traceOf(p, mem, {});
    const LoopForest forest = LoopForest::build(p);
    const TraceLoopMap map = mapTraceToLoops(p, trace, forest);
    const auto dfgs = buildAllDfgs(p);
    const auto profiles = profileDeps(p, trace, forest, map, dfgs);
    EXPECT_TRUE(profiles[0].otherRecurrence);
    EXPECT_FALSE(profiles[0].vectorizableDeps());
}

TEST(Dfg, DefsUsesAndInvariance)
{
    const Program p = diamondLoopProgram();
    const Dfg dfg = Dfg::build(p, 0);
    const LoopForest forest = LoopForest::build(p);
    const Loop &loop = forest.loop(0);
    // The loop bound register (n) is defined outside the loop.
    // Find a register with defs only outside the loop body.
    bool found_invariant = false;
    for (RegId r = 0; r < p.function(0).numRegs; ++r) {
        if (!dfg.defsOf(r).empty() &&
            dfg.invariantIn(p, r, loop) && !dfg.usesOf(r).empty()) {
            found_invariant = true;
        }
    }
    EXPECT_TRUE(found_invariant);
}

TEST(Dfg, BackwardSliceFollowsOperands)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId a = f.movi(1);      // sid 0
    const RegId b = f.movi(2);      // sid 1
    const RegId c = f.add(a, b);    // sid 2
    const RegId d = f.movi(5);      // sid 3 (not in slice)
    const RegId e = f.add(c, c);    // sid 4
    (void)d;
    f.ret(e);
    const Program p = pb.build();
    const Dfg dfg = Dfg::build(p, 0);
    const auto slice = dfg.backwardSlice(p, {0}, {4});
    EXPECT_EQ(slice.size(), 4u); // 0,1,2,4
    EXPECT_EQ(std::count(slice.begin(), slice.end(), 3), 0);
}

} // namespace
} // namespace prism
