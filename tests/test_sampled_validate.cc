/**
 * @file
 * Sampled cross-validation tests: the stratified CPI estimate must
 * be deterministic (independent of thread count), bounded-coverage,
 * and statistically sound — its confidence interval contains the
 * full-trace reference CPI. Runs under the `concurrency` label so
 * the TSan leg covers the parallel fan-out.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "tdg/reference/sampled_validate.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

double
fullCpi(const Trace &trace, const CoreConfig &core)
{
    const MStream s = buildCoreStream(trace);
    RefSimScratch ss;
    const Cycle c = CycleCoreSim(core).run(s, ss);
    return static_cast<double>(c) / static_cast<double>(s.size());
}

TEST(SampledValidate, DeterministicAcrossThreadCounts)
{
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), 60'000);
    const CoreConfig core = coreConfig(CoreKind::OOO2);
    const SampleConfig cfg;
    const SampledCpi serial =
        sampledCpiEstimate(lw->tdg().trace(), core, cfg, nullptr);
    ThreadPool pool(4);
    const SampledCpi parallel =
        sampledCpiEstimate(lw->tdg().trace(), core, cfg, &pool);
    EXPECT_EQ(serial.cpi, parallel.cpi);
    EXPECT_EQ(serial.ciLow, parallel.ciLow);
    EXPECT_EQ(serial.ciHigh, parallel.ciHigh);
    EXPECT_EQ(serial.unitsSimulated, parallel.unitsSimulated);
}

TEST(SampledValidate, CiContainsFullTraceCpi)
{
    ThreadPool pool(4);
    for (const char *name : {"conv", "181.mcf", "mem-stream"}) {
        const auto lw =
            LoadedWorkload::load(findWorkload(name), 60'000);
        const CoreConfig core = coreConfig(CoreKind::OOO2);
        const SampledCpi est = sampledCpiEstimate(
            lw->tdg().trace(), core, SampleConfig{}, &pool);
        const double full = fullCpi(lw->tdg().trace(), core);
        EXPECT_GE(full, est.ciLow) << name;
        EXPECT_LE(full, est.ciHigh) << name;
        EXPECT_GT(est.cpi, 0.0) << name;
    }
}

TEST(SampledValidate, CoverageBoundedOnFullLengthTrace)
{
    // At the shipped defaults a full-length trace is sampled at
    // well under 10% coverage.
    const auto lw = LoadedWorkload::load(findWorkload("conv"));
    const CoreConfig core = coreConfig(CoreKind::OOO2);
    const SampledCpi est = sampledCpiEstimate(
        lw->tdg().trace(), core, SampleConfig{}, nullptr);
    EXPECT_LE(est.coverage, 0.10);
    EXPECT_GT(est.coverage, 0.0);
    EXPECT_EQ(est.insts, lw->tdg().trace().size());
}

TEST(SampledValidate, DegenerateTinyTrace)
{
    // Fewer instructions than one unit: a single fully-sampled
    // stratum, zero-width CI, exact answer.
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), 200);
    const CoreConfig core = coreConfig(CoreKind::IO2);
    const SampledCpi est = sampledCpiEstimate(
        lw->tdg().trace(), core, SampleConfig{}, nullptr);
    const double full = fullCpi(lw->tdg().trace(), core);
    EXPECT_NEAR(est.cpi, full, 1e-9);
    EXPECT_NEAR(est.ciLow, est.ciHigh, 1e-9);
}

} // namespace
} // namespace prism
