/**
 * @file
 * Static behavior-space analysis tests: crafted kernels whose behavior
 * coordinates are known by construction (affine streams, pointer
 * chasing, index-array gathers, non-idiom recurrences), the soundness
 * differential against the dynamic TDG classification on each of
 * them and on a shipped workload, and stability of the feature-vector
 * export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/behavior.hh"
#include "sim/trace_gen.hh"
#include "tdg/analyzer.hh"
#include "tdg/constructor.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

/** Trace a freshly built program. */
Tdg
makeTdg(Program &prog, SimMemory &mem,
        const std::vector<std::int64_t> &args)
{
    Trace trace(&prog);
    generateTrace(prog, mem, args, trace);
    return Tdg(prog, std::move(trace));
}

/** The (single) innermost loop a crafted kernel builds. */
const LoopBehavior &
soleInnermost(const BehaviorAnalysis &ba)
{
    const LoopBehavior *found = nullptr;
    for (const LoopBehavior &lb : ba.loops()) {
        if (!lb.innermost)
            continue;
        EXPECT_EQ(found, nullptr) << "kernel has several innermost loops";
        found = &lb;
    }
    EXPECT_NE(found, nullptr);
    return *found;
}

/** Streaming FP kernel: out[i] = a[i] * b[i] + c, unit structure. */
Program
affineStream(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 3);
    const RegId eight = f.movi(8);
    const RegId c = f.fmovi(0.25);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId x = f.ld(f.add(f.arg(0), off), 0);
        const RegId y = f.ld(f.add(f.arg(1), off), 0);
        f.st(f.add(f.arg(2), off), 0, f.fma(x, y, c));
    });
    f.retVoid();
    return pb.build();
}

/** Linked-list walk: p = *p, n hops. Addresses are data. */
Program
pointerChase(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId p = f.reg();
    f.movTo(p, f.arg(0));
    const RegId sum = f.reg();
    f.moviTo(sum, 0);
    countedLoop(f, 0, n, 1, [&](RegId) {
        f.movTo(p, f.ld(p, 0));
        f.addTo(sum, sum, p);
    });
    f.ret(sum);
    return pb.build();
}

/** Running max via Sel: a self-dependence that is no SIMD idiom. */
Program
selMax(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId m = f.reg();
    f.moviTo(m, 0);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v = f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        const RegId c = f.cmplt(m, v);
        f.selTo(m, c, v, m);
    });
    f.ret(m);
    return pb.build();
}

/** Gather through an index array: out[i] = data[idx[i]]. */
Program
indexGather(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 3);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId j = f.ld(f.add(f.arg(0), off), 0);
        const RegId v = f.ld(f.add(f.arg(1), f.mul(j, eight)), 0);
        f.st(f.add(f.arg(2), off), 0, v);
    });
    f.retVoid();
    return pb.build();
}

// ---------------------------------------------------------------
// Crafted kernels: axes known by construction
// ---------------------------------------------------------------

TEST(Behavior, AffineStreamIsFullyClassified)
{
    Program prog = affineStream(256);
    const TdgStatics statics(prog);
    const BehaviorAnalysis ba(statics);
    const LoopBehavior &lb = soleInnermost(ba);

    EXPECT_FALSE(lb.containsCall);
    EXPECT_TRUE(lb.straightLine);
    EXPECT_EQ(lb.accesses.size(), 3u);
    EXPECT_EQ(lb.numAffineConst, 3u);
    EXPECT_EQ(lb.numIrregular, 0u);
    for (const StaticAccess &a : lb.accesses) {
        EXPECT_EQ(a.cls, AddrClass::AffineConst);
        EXPECT_EQ(a.stride, 8);
        EXPECT_TRUE(a.definite);
        EXPECT_TRUE(a.everyIteration);
    }
    EXPECT_FALSE(lb.certainRecurrence);
    EXPECT_GE(lb.numInductions, 1u);

    // NS-DF legality is purely static: a tiny call-free nest is a
    // definite Yes. SIMD depends on dynamic facts (trip counts), so
    // it stays Unknown. DP-CGRA is a static No here: the compute
    // slice is the lone fma — too small for the fabric on any trace.
    EXPECT_EQ(lb.verdictFor(BsaKind::Nsdf), Applicability::Yes);
    EXPECT_EQ(lb.verdictFor(BsaKind::Simd), Applicability::Unknown);
    EXPECT_EQ(lb.verdictFor(BsaKind::DpCgra), Applicability::No);
    EXPECT_EQ(lb.computeSliceSize, 1u);
}

TEST(Behavior, AffineStreamDifferentialIsClean)
{
    Program prog = affineStream(256);
    SimMemory mem;
    Rng rng(11);
    fillF64(mem, 0x10000, 256, rng);
    fillF64(mem, 0x20000, 256, rng);
    const Tdg tdg = makeTdg(prog, mem, {0x10000, 0x20000, 0x30000});
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics statics(prog);
    const BehaviorAnalysis ba(statics);

    EXPECT_TRUE(behaviorDifferential(tdg, analyzer, ba).empty());
    // The verdicts agree in the concrete too: the dynamic analyzer
    // accepts what the static Yes promised.
    const LoopBehavior &lb = soleInnermost(ba);
    EXPECT_TRUE(analyzer.usable(BsaKind::Nsdf, lb.loopId));
}

TEST(Behavior, PointerChaseSaysUnknownNotWrong)
{
    Program prog = pointerChase(64);
    const TdgStatics statics(prog);
    const BehaviorAnalysis ba(statics);
    const LoopBehavior &lb = soleInnermost(ba);

    // The chased load must be Irregular — any stride claim would be
    // unsound. (No definite claims at all from this loop's memory.)
    ASSERT_EQ(lb.accesses.size(), 1u);
    EXPECT_EQ(lb.accesses[0].cls, AddrClass::Irregular);
    EXPECT_FALSE(lb.accesses[0].definite);
    EXPECT_EQ(lb.numIrregular, 1u);

    // SIMD applicability must not be a definite Yes.
    EXPECT_NE(lb.verdictFor(BsaKind::Simd), Applicability::Yes);

    // ... and the dynamic cross-check agrees with whatever was said.
    SimMemory mem;
    const Addr base = 0x10000;
    for (std::int64_t k = 0; k <= 64; ++k)
        mem.writeI64(base + 8 * k, static_cast<std::int64_t>(base + 8 * (k + 1)));
    Program traced = pointerChase(64);
    const Tdg tdg = makeTdg(traced, mem, {static_cast<std::int64_t>(base)});
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics tracedStatics(traced);
    const BehaviorAnalysis tracedBa(tracedStatics);
    EXPECT_TRUE(behaviorDifferential(tdg, analyzer, tracedBa).empty());
    EXPECT_FALSE(analyzer.usable(BsaKind::Simd,
                                 soleInnermost(tracedBa).loopId));
}

TEST(Behavior, NonIdiomRecurrenceIsStaticallyCertain)
{
    Program prog = selMax(128);
    SimMemory mem;
    Rng rng(23);
    fillI64(mem, 0x10000, 128, rng, 1, 1000);
    const Tdg tdg = makeTdg(prog, mem, {0x10000});
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics statics(prog);
    const BehaviorAnalysis ba(statics);
    const LoopBehavior &lb = soleInnermost(ba);

    // The Sel self-dependence runs every iteration and matches no
    // vectorizable idiom: a static No, not merely Unknown.
    EXPECT_TRUE(lb.certainRecurrence);
    EXPECT_EQ(lb.verdictFor(BsaKind::Simd), Applicability::No);
    EXPECT_EQ(lb.verdictFor(BsaKind::DpCgra), Applicability::No);

    // Soundness: the dynamic analyzer indeed rejects both.
    EXPECT_FALSE(analyzer.usable(BsaKind::Simd, lb.loopId));
    EXPECT_FALSE(analyzer.usable(BsaKind::DpCgra, lb.loopId));
    EXPECT_TRUE(behaviorDifferential(tdg, analyzer, ba).empty());
}

TEST(Behavior, GatherDiffersFromDynamicOnlyInPrecision)
{
    // idx holds 0..n-1 in order, so the *dynamic* profile of the
    // gathered load observes a perfectly constant 8-byte stride —
    // a fact the static lattice cannot prove. The static answer must
    // be the imprecise-but-sound Irregular, and the differential must
    // accept the disagreement (Unknown makes no claim).
    const std::int64_t n = 96;
    Program prog = indexGather(n);
    SimMemory mem;
    for (std::int64_t k = 0; k < n; ++k) {
        mem.writeI64(0x10000 + 8 * k, k);     // idx[k] = k
        mem.writeI64(0x20000 + 8 * k, 7 * k); // data
    }
    const Tdg tdg = makeTdg(prog, mem, {0x10000, 0x20000, 0x30000});
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics statics(prog);
    const BehaviorAnalysis ba(statics);
    const LoopBehavior &lb = soleInnermost(ba);

    ASSERT_EQ(lb.accesses.size(), 3u);
    const StaticAccess *gather = nullptr;
    std::uint32_t affine = 0;
    for (const StaticAccess &a : lb.accesses) {
        if (a.cls == AddrClass::Irregular)
            gather = &a;
        else if (a.cls == AddrClass::AffineConst && a.definite)
            ++affine;
    }
    ASSERT_NE(gather, nullptr);
    EXPECT_TRUE(gather->isLoad);
    EXPECT_EQ(affine, 2u); // the idx load and the output store

    const MemAccessPattern *dyn =
        tdg.memProfile(lb.loopId).find(gather->sid);
    ASSERT_NE(dyn, nullptr);
    EXPECT_TRUE(dyn->strideKnown);
    EXPECT_TRUE(dyn->strideSet);
    EXPECT_EQ(dyn->stride, 8);

    EXPECT_TRUE(behaviorDifferential(tdg, analyzer, ba).empty());
}

// ---------------------------------------------------------------
// Predictions, differential and export on real workloads
// ---------------------------------------------------------------

TEST(Behavior, ShippedWorkloadDifferentialIsClean)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const TdgAnalyzer analyzer(lw->tdg());
    const TdgStatics statics(lw->program());
    const BehaviorAnalysis ba(statics);

    EXPECT_TRUE(behaviorDifferential(lw->tdg(), analyzer, ba).empty());

    // One prediction per (loop, BSA), all warning severity.
    const auto preds = behaviorPredictions(ba);
    EXPECT_EQ(preds.size(), ba.loops().size() * kAllBsas.size());
    EXPECT_EQ(numErrors(preds), 0u);
}

TEST(Behavior, SummaryCountsAreConsistent)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const TdgStatics statics(lw->program());
    const BehaviorAnalysis ba(statics);
    const BehaviorSummary s = summarizeBehavior(ba);

    EXPECT_EQ(s.loops, ba.loops().size());
    EXPECT_GE(s.loops, 1u);
    EXPECT_GE(s.innermostLoops, 1u);
    EXPECT_LE(s.innermostLoops, s.loops);
    EXPECT_LE(s.nsdfYes, s.loops);
    EXPECT_GE(s.affineFraction, 0.0);
    EXPECT_LE(s.affineFraction + s.irregularFraction, 1.0 + 1e-9);
}

TEST(Behavior, FeatureCsvIsStableAndWellFormed)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"), 20'000);
    const TdgStatics statics(lw->program());
    const BehaviorAnalysis ba(statics);

    std::ostringstream a;
    writeBehaviorCsv(ba, "conv", /*header=*/true, a);
    std::ostringstream b;
    writeBehaviorCsv(ba, "conv", /*header=*/true, b);
    EXPECT_EQ(a.str(), b.str()); // deterministic, byte-identical

    // header + one row per loop, all with the same column count.
    std::istringstream in(a.str());
    std::string line;
    std::size_t rows = 0;
    std::size_t cols = 0;
    while (std::getline(in, line)) {
        const std::size_t c =
            static_cast<std::size_t>(
                std::count(line.begin(), line.end(), ',')) + 1;
        if (rows == 0)
            cols = c;
        EXPECT_EQ(c, cols) << "row " << rows << ": " << line;
        ++rows;
    }
    EXPECT_EQ(rows, ba.loops().size() + 1);
}

} // namespace
} // namespace prism
