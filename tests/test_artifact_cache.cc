/**
 * @file
 * Tests for the content-addressed artifact store and the cached
 * artifact kinds built on it (TDG profiles, model evaluation
 * tables): corruption, version skew, truncated writes and
 * wrong-program entries must all fall back to recompute, and a
 * cache-loaded BenchmarkModel must be observationally identical to a
 * freshly built one.
 */

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "common/artifact_cache.hh"
#include "sim/trace_gen.hh"
#include "tdg/artifacts.hh"
#include "trace/trace_cache.hh"
#include "workloads/kernel_util.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

constexpr std::uint64_t kTestInsts = 40'000;

/** Fresh cache directory, removed on scope exit. */
struct TempCacheDir
{
    std::string path;
    explicit TempCacheDir(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::filesystem::remove_all(path);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path); }
};

Program
smallProgram(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v = f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        f.addTo(acc, acc, v);
    });
    f.ret(acc);
    return pb.build();
}

constexpr ArtifactKind kTestKind{"testkind", 1};

void
storeNumbers(const ArtifactCache &cache, const ArtifactKey &key,
             std::uint64_t a, double b)
{
    cache.store(kTestKind, "t", key, [&](ArtifactWriter &w) {
        w.u64(a);
        w.f64(b);
    });
}

bool
loadNumbers(const ArtifactCache &cache, const ArtifactKey &key,
            std::uint64_t &a, double &b)
{
    return cache.load(kTestKind, "t", key, [&](ArtifactReader &r) {
        a = r.u64();
        b = r.f64();
        return r.ok();
    });
}

TEST(ArtifactCache, StoreLoadRoundTripAndCounters)
{
    TempCacheDir dir("prism_art_roundtrip");
    const ArtifactCache cache(dir.path);
    const ArtifactKey key = ArtifactKey().mix(123u).mix("payload");

    std::uint64_t a = 0;
    double b = 0;
    EXPECT_FALSE(loadNumbers(cache, key, a, b));
    EXPECT_EQ(cache.stats(kTestKind).misses, 1u);

    storeNumbers(cache, key, 42, 2.5);
    ASSERT_TRUE(loadNumbers(cache, key, a, b));
    EXPECT_EQ(a, 42u);
    EXPECT_EQ(b, 2.5);

    const ArtifactStats s = cache.stats(kTestKind);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.stores, 1u);
    // 16-byte payload plus the file header; read and write agree.
    EXPECT_GE(s.bytesWritten, 16u);
    EXPECT_EQ(s.bytesRead, s.bytesWritten);
}

TEST(ArtifactCache, DoubleRoundTripIsBitExact)
{
    TempCacheDir dir("prism_art_f64");
    const ArtifactCache cache(dir.path);
    // Values with no short decimal representation, plus edge cases.
    const double values[] = {1.0 / 3.0, 0.1, -0.0, 1e-308, 6.02e23};
    const ArtifactKey key = ArtifactKey().mix(1u);
    cache.store(kTestKind, "f", key, [&](ArtifactWriter &w) {
        for (double v : values)
            w.f64(v);
    });
    cache.load(kTestKind, "f", key, [&](ArtifactReader &r) {
        for (double v : values) {
            const double got = r.f64();
            EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                      std::bit_cast<std::uint64_t>(v));
        }
        return r.ok();
    });
}

TEST(ArtifactCache, TruncatedEntryIsRejectedMissThenRepaired)
{
    TempCacheDir dir("prism_art_trunc");
    const ArtifactCache cache(dir.path);
    const ArtifactKey key = ArtifactKey().mix(7u);
    storeNumbers(cache, key, 9, 1.25);

    const std::string path = cache.pathFor(kTestKind, "t", key);
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 4);

    std::uint64_t a = 0;
    double b = 0;
    EXPECT_FALSE(loadNumbers(cache, key, a, b));
    EXPECT_EQ(cache.stats(kTestKind).rejected, 1u);
    EXPECT_EQ(cache.stats(kTestKind).misses, 1u);

    // The recompute-then-store path repairs the entry.
    storeNumbers(cache, key, 9, 1.25);
    EXPECT_TRUE(loadNumbers(cache, key, a, b));
    EXPECT_EQ(a, 9u);
}

TEST(ArtifactCache, CorruptMagicIsRejectedMiss)
{
    TempCacheDir dir("prism_art_magic");
    const ArtifactCache cache(dir.path);
    const ArtifactKey key = ArtifactKey().mix(8u);
    storeNumbers(cache, key, 1, 1.0);

    const std::string path = cache.pathFor(kTestKind, "t", key);
    {
        std::fstream fs(path, std::ios::in | std::ios::out |
                                  std::ios::binary);
        fs.seekp(0);
        fs.write("X", 1);
    }
    std::uint64_t a = 0;
    double b = 0;
    EXPECT_FALSE(loadNumbers(cache, key, a, b));
    EXPECT_EQ(cache.stats(kTestKind).rejected, 1u);
}

TEST(ArtifactCache, TrailingBytesAreRejected)
{
    TempCacheDir dir("prism_art_trailing");
    const ArtifactCache cache(dir.path);
    const ArtifactKey key = ArtifactKey().mix(9u);
    storeNumbers(cache, key, 1, 1.0);
    {
        std::ofstream os(cache.pathFor(kTestKind, "t", key),
                         std::ios::binary | std::ios::app);
        os << "junk";
    }
    std::uint64_t a = 0;
    double b = 0;
    EXPECT_FALSE(loadNumbers(cache, key, a, b));
    EXPECT_EQ(cache.stats(kTestKind).rejected, 1u);
}

TEST(ArtifactCache, VersionSkewSelfInvalidates)
{
    TempCacheDir dir("prism_art_version");
    const ArtifactCache cache(dir.path);
    const ArtifactKey key = ArtifactKey().mix(5u);
    storeNumbers(cache, key, 3, 0.5);

    // A new code version addresses a different file: plain miss, the
    // stale entry is simply never looked up again.
    constexpr ArtifactKind bumped{"testkind", 2};
    EXPECT_FALSE(cache.load(bumped, "t", key,
                            [](ArtifactReader &) { return true; }));

    // Even renaming the stale file onto the new address is caught:
    // the recorded address inside the file disagrees.
    std::filesystem::copy_file(cache.pathFor(kTestKind, "t", key),
                               cache.pathFor(bumped, "t", key));
    EXPECT_FALSE(cache.load(bumped, "t", key, [](ArtifactReader &r) {
        r.u64();
        r.f64();
        return r.ok();
    }));
    EXPECT_EQ(cache.stats(bumped).rejected, 1u);
}

TEST(ArtifactCache, CorruptLengthFieldCannotDriveHugeAllocation)
{
    TempCacheDir dir("prism_art_len");
    const ArtifactCache cache(dir.path);
    const ArtifactKey key = ArtifactKey().mix(6u);
    cache.store(kTestKind, "t", key, [&](ArtifactWriter &w) {
        w.u64(~0ull); // an absurd element count
    });
    EXPECT_FALSE(
        cache.load(kTestKind, "t", key, [](ArtifactReader &r) {
            std::vector<std::uint64_t> v;
            return r.vec(v, 1u << 20); // capped: fails, no OOM
        }));
    EXPECT_EQ(cache.stats(kTestKind).rejected, 1u);
}

TEST(ArtifactCache, WrongProgramTraceIsMiss)
{
    TempCacheDir dir("prism_art_wrongprog");
    const ArtifactCache cache(dir.path);
    const Program a = smallProgram(40);
    const Program b = smallProgram(41);
    SimMemory mem;
    Trace trace(&a);
    generateTrace(a, mem, {0x4000}, trace);
    storeCachedTrace(cache, "wl", a, 0, trace);

    // Different program fingerprint: different address, plain miss.
    EXPECT_FALSE(loadCachedTrace(cache, "wl", b, 0));

    // Forcing A's entry onto B's address is rejected on load (the
    // recorded address and the payload fingerprint both disagree).
    std::filesystem::copy_file(
        cache.pathFor(kTraceArtifactKind, "wl",
                      traceArtifactKey(a, 0)),
        cache.pathFor(kTraceArtifactKind, "wl",
                      traceArtifactKey(b, 0)));
    EXPECT_FALSE(loadCachedTrace(cache, "wl", b, 0));
    EXPECT_GE(cache.stats(kTraceArtifactKind).rejected, 1u);
}

// ---- TDG profiles -------------------------------------------------

void
expectProfilesEqual(const TdgProfiles &x, const TdgProfiles &y)
{
    ASSERT_EQ(x.loopMap.loopOf, y.loopMap.loopOf);
    ASSERT_EQ(x.loopMap.occOf, y.loopMap.occOf);
    ASSERT_EQ(x.loopMap.occurrences.size(),
              y.loopMap.occurrences.size());
    for (std::size_t i = 0; i < x.loopMap.occurrences.size(); ++i) {
        const LoopOccurrence &a = x.loopMap.occurrences[i];
        const LoopOccurrence &b = y.loopMap.occurrences[i];
        ASSERT_EQ(a.loopId, b.loopId) << i;
        ASSERT_EQ(a.begin, b.begin) << i;
        ASSERT_EQ(a.end, b.end) << i;
        ASSERT_EQ(a.iterStarts, b.iterStarts) << i;
    }
    ASSERT_EQ(x.pathProfiles.size(), y.pathProfiles.size());
    for (std::size_t i = 0; i < x.pathProfiles.size(); ++i) {
        const PathProfile &a = x.pathProfiles[i];
        const PathProfile &b = y.pathProfiles[i];
        ASSERT_EQ(a.loopId, b.loopId) << i;
        ASSERT_EQ(a.totalIters, b.totalIters) << i;
        ASSERT_EQ(a.backEdgeTaken, b.backEdgeTaken) << i;
        ASSERT_EQ(a.numStaticPaths, b.numStaticPaths) << i;
        ASSERT_EQ(a.paths.size(), b.paths.size()) << i;
        for (std::size_t j = 0; j < a.paths.size(); ++j) {
            ASSERT_EQ(a.paths[j].id, b.paths[j].id);
            ASSERT_EQ(a.paths[j].count, b.paths[j].count);
            ASSERT_EQ(a.paths[j].blocks, b.paths[j].blocks);
        }
    }
    ASSERT_EQ(x.memProfiles.size(), y.memProfiles.size());
    for (std::size_t i = 0; i < x.memProfiles.size(); ++i) {
        const LoopMemProfile &a = x.memProfiles[i];
        const LoopMemProfile &b = y.memProfiles[i];
        ASSERT_EQ(a.loopId, b.loopId) << i;
        ASSERT_EQ(a.itersObserved, b.itersObserved) << i;
        ASSERT_EQ(a.loopCarriedStoreToLoad, b.loopCarriedStoreToLoad);
        ASSERT_EQ(a.accesses.size(), b.accesses.size()) << i;
        for (std::size_t j = 0; j < a.accesses.size(); ++j) {
            ASSERT_EQ(a.accesses[j].sid, b.accesses[j].sid);
            ASSERT_EQ(a.accesses[j].isLoad, b.accesses[j].isLoad);
            ASSERT_EQ(a.accesses[j].memSize, b.accesses[j].memSize);
            ASSERT_EQ(a.accesses[j].count, b.accesses[j].count);
            ASSERT_EQ(a.accesses[j].strideKnown,
                      b.accesses[j].strideKnown);
            ASSERT_EQ(a.accesses[j].stride, b.accesses[j].stride);
        }
    }
    ASSERT_EQ(x.depProfiles.size(), y.depProfiles.size());
    for (std::size_t i = 0; i < x.depProfiles.size(); ++i) {
        const LoopDepProfile &a = x.depProfiles[i];
        const LoopDepProfile &b = y.depProfiles[i];
        ASSERT_EQ(a.loopId, b.loopId) << i;
        ASSERT_EQ(a.carriedDeps, b.carriedDeps) << i;
        ASSERT_EQ(a.inductions, b.inductions) << i;
        ASSERT_EQ(a.reductions, b.reductions) << i;
        ASSERT_EQ(a.otherRecurrence, b.otherRecurrence) << i;
    }
}

TEST(TdgProfileArtifacts, RoundTripPreservesEveryProfile)
{
    TempCacheDir dir("prism_art_tdgprof");
    const ArtifactCache cache(dir.path);
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), kTestInsts);
    const Tdg &tdg = lw->tdg();
    const Program &prog = lw->program();

    // Rebuild the profiles from the trace to get an owned copy.
    TdgStatics statics(prog);
    TdgBuilder builder(statics);
    builder.begin(tdg.trace());
    builder.feed(0, tdg.trace().size());
    const TdgProfiles original = builder.finish();

    storeTdgProfiles(cache, "conv", prog, kTestInsts, original);
    const auto loaded =
        loadTdgProfiles(cache, "conv", prog, kTestInsts, tdg.trace(),
                        statics.forest.numLoops());
    ASSERT_TRUE(loaded);
    expectProfilesEqual(original, *loaded);

    // A different budget or program is a miss, not a wrong hit.
    EXPECT_FALSE(loadTdgProfiles(cache, "conv", prog,
                                 kTestInsts + 1, tdg.trace(),
                                 statics.forest.numLoops()));
}

// ---- Model evaluation tables --------------------------------------

void
expectResultsIdentical(const ExoResult &a, const ExoResult &b)
{
    ASSERT_EQ(a.cycles, b.cycles);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.energy),
              std::bit_cast<std::uint64_t>(b.energy));
    ASSERT_EQ(a.unitCycles, b.unitCycles);
    for (int u = 0; u < kNumUnits; ++u) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a.unitEnergy[u]),
                  std::bit_cast<std::uint64_t>(b.unitEnergy[u]))
            << u;
    }
    ASSERT_EQ(a.choices.size(), b.choices.size());
    for (std::size_t i = 0; i < a.choices.size(); ++i) {
        ASSERT_EQ(a.choices[i].loopId, b.choices[i].loopId) << i;
        ASSERT_EQ(a.choices[i].unit, b.choices[i].unit) << i;
    }
}

/** Persist every component of `model` into `cache`. */
void
storeAllComponents(const ArtifactCache &cache, const Tdg &tdg,
                   const BenchmarkModel &model)
{
    storeBaselineTables(cache, "conv", tdg.trace().program(),
                        kTestInsts, model.config(),
                        model.baseTables());
    for (BsaKind bsa : kAllBsas) {
        storeRegionEvalTable(cache, "conv", tdg.trace().program(),
                             kTestInsts, model.config(), bsa,
                             model.regionTable(bsa));
    }
}

TEST(ModelArtifacts, CacheLoadedModelEvaluatesByteIdentically)
{
    TempCacheDir dir("prism_art_model");
    const ArtifactCache cache(dir.path);
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), kTestInsts);
    const Tdg &tdg = lw->tdg();

    const BenchmarkModel fresh(tdg, CoreKind::OOO2);
    storeAllComponents(cache, tdg, fresh);

    const PipelineConfig cfg{.core = coreConfig(CoreKind::OOO2)};
    auto base =
        loadBaselineTables(cache, "conv", tdg, kTestInsts, cfg);
    ASSERT_TRUE(base);
    std::array<std::shared_ptr<const RegionEvalTable>, 4> bsas;
    for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
        auto t = loadRegionEvalTable(cache, "conv", tdg, kTestInsts,
                                     cfg, kAllBsas[i]);
        ASSERT_TRUE(t);
        bsas[i] = std::make_shared<const RegionEvalTable>(
            std::move(*t));
    }
    const BenchmarkModel warm(
        tdg, cfg,
        std::make_shared<const BaselineTables>(std::move(*base)),
        bsas);

    expectResultsIdentical(fresh.baseline(), warm.baseline());
    for (unsigned mask = 0; mask <= kFullBsaMask; ++mask) {
        for (SchedulerKind sched : {SchedulerKind::Oracle,
                                    SchedulerKind::AmdahlTree}) {
            SCOPED_TRACE("mask " + std::to_string(mask) +
                         (sched == SchedulerKind::Oracle
                              ? " oracle"
                              : " amdahl"));
            expectResultsIdentical(fresh.evaluate(mask, sched),
                                   warm.evaluate(mask, sched));
        }
    }
}

TEST(ModelArtifacts, ComponentKeysAreHonest)
{
    TempCacheDir dir("prism_art_modelkey");
    const ArtifactCache cache(dir.path);
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), kTestInsts);
    const Tdg &tdg = lw->tdg();

    const BenchmarkModel fresh(tdg, CoreKind::OOO2);
    storeAllComponents(cache, tdg, fresh);

    // A different core misses every component.
    const PipelineConfig io2{.core = coreConfig(CoreKind::IO2)};
    EXPECT_FALSE(
        loadBaselineTables(cache, "conv", tdg, kTestInsts, io2));
    for (BsaKind bsa : kAllBsas) {
        EXPECT_FALSE(loadRegionEvalTable(cache, "conv", tdg,
                                         kTestInsts, io2, bsa));
    }

    // Tweaking one accelerator's parameter invalidates exactly that
    // accelerator's table: the baseline and the sibling BSAs still
    // hit (their keys never mix NS-DF parameters).
    PipelineConfig tweaked{.core = coreConfig(CoreKind::OOO2)};
    tweaked.nsdf.wbBusWidth += 1;
    EXPECT_TRUE(loadBaselineTables(cache, "conv", tdg, kTestInsts,
                                   tweaked));
    EXPECT_FALSE(loadRegionEvalTable(cache, "conv", tdg, kTestInsts,
                                     tweaked, BsaKind::Nsdf));
    for (BsaKind bsa :
         {BsaKind::Simd, BsaKind::DpCgra, BsaKind::Tracep}) {
        EXPECT_TRUE(loadRegionEvalTable(cache, "conv", tdg,
                                        kTestInsts, tweaked, bsa));
    }

    // The display name is not part of any key: a parametric point
    // with OOO2's exact parameters shares OOO2's components.
    PipelineConfig renamed =
        pipelineConfigFrom(coreParams(CoreKind::OOO2));
    EXPECT_NE(std::string(renamed.core.name),
              std::string(coreConfig(CoreKind::OOO2).name));
    EXPECT_TRUE(loadBaselineTables(cache, "conv", tdg, kTestInsts,
                                   renamed));
    EXPECT_TRUE(loadRegionEvalTable(cache, "conv", tdg, kTestInsts,
                                    renamed, BsaKind::Simd));
}

TEST(ModelArtifacts, CodeVersionFlipForcesRecompute)
{
    TempCacheDir dir("prism_art_modelver");
    const ArtifactCache cache(dir.path);
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), kTestInsts);
    const Tdg &tdg = lw->tdg();

    const BenchmarkModel fresh(tdg, CoreKind::OOO2);
    const PipelineConfig cfg{.core = coreConfig(CoreKind::OOO2)};
    storeBaselineTables(cache, "conv", tdg.trace().program(),
                        kTestInsts, cfg, fresh.baseTables());

    // The entry is live under the current model-code version...
    EXPECT_TRUE(loadBaselineTables(cache, "conv", tdg, kTestInsts,
                                   cfg, kModelCodeVersion));
    // ...and dead the instant the code version moves: zero silent
    // staleness.
    EXPECT_FALSE(loadBaselineTables(cache, "conv", tdg, kTestInsts,
                                    cfg, kModelCodeVersion + 1));
    const ArtifactStats s = cache.stats(kBaseTimingKind);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.rejected, 0u);

    // Storing under the new version keys a fresh entry; both
    // versions then coexist independently.
    storeBaselineTables(cache, "conv", tdg.trace().program(),
                        kTestInsts, cfg, fresh.baseTables(),
                        kModelCodeVersion + 1);
    EXPECT_TRUE(loadBaselineTables(cache, "conv", tdg, kTestInsts,
                                   cfg, kModelCodeVersion + 1));
}

TEST(ModelArtifacts, CorruptComponentEntryFallsBackToRecompute)
{
    TempCacheDir dir("prism_art_modelcorrupt");
    const ArtifactCache cache(dir.path);
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), kTestInsts);
    const Tdg &tdg = lw->tdg();

    const BenchmarkModel fresh(tdg, CoreKind::OOO2);
    const PipelineConfig cfg{.core = coreConfig(CoreKind::OOO2)};
    storeBaselineTables(cache, "conv", tdg.trace().program(),
                        kTestInsts, cfg, fresh.baseTables());

    const std::string path = cache.pathFor(
        kBaseTimingKind, "conv",
        baselineTablesKey(tdg.trace().program(), kTestInsts, cfg));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);

    EXPECT_FALSE(
        loadBaselineTables(cache, "conv", tdg, kTestInsts, cfg));
    EXPECT_EQ(cache.stats(kBaseTimingKind).rejected, 1u);

    // Recompute + store repairs it.
    storeBaselineTables(cache, "conv", tdg.trace().program(),
                        kTestInsts, cfg, fresh.baseTables());
    EXPECT_TRUE(
        loadBaselineTables(cache, "conv", tdg, kTestInsts, cfg));
}

TEST(ModelArtifacts, EnumerateListsStoredComponents)
{
    TempCacheDir dir("prism_art_enum");
    const ArtifactCache cache(dir.path);
    const auto lw =
        LoadedWorkload::load(findWorkload("conv"), kTestInsts);
    const Tdg &tdg = lw->tdg();

    EXPECT_TRUE(cache.enumerate().empty());

    const BenchmarkModel fresh(tdg, CoreKind::OOO2);
    storeAllComponents(cache, tdg, fresh);

    const auto all = cache.enumerate();
    ASSERT_EQ(all.size(), 5u); // 1 basecore + 4 regioneval
    for (const ArtifactCache::Entry &e : all) {
        EXPECT_EQ(e.stem, "conv");
        EXPECT_GT(e.bytes, 0u);
    }
    EXPECT_EQ(cache.enumerate(kBaseTimingKind.name).size(), 1u);
    EXPECT_EQ(cache.enumerate(kRegionEvalKind.name).size(), 4u);
    EXPECT_TRUE(cache.enumerate("nosuchkind").empty());
}

} // namespace
} // namespace prism
