/**
 * @file
 * Unit tests for the common utilities: statistics, RNG, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace prism
{
namespace
{

TEST(Stats, MeanBasics)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeomeanMatchesHandComputation)
{
    const std::vector<double> xs{1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
    const std::vector<double> ys{2.0, 2.0, 2.0};
    EXPECT_NEAR(geomean(ys), 2.0, 1e-12);
}

TEST(Stats, GeomeanOfSpeedupAndSlowdownCancels)
{
    const std::vector<double> xs{2.0, 0.5};
    EXPECT_NEAR(geomean(xs), 1.0, 1e-12);
}

TEST(Stats, HarmonicMean)
{
    const std::vector<double> xs{1.0, 2.0};
    EXPECT_NEAR(harmonicMean(xs), 4.0 / 3.0, 1e-12);
}

TEST(Stats, StddevIsSampleStatistic)
{
    const std::vector<double> xs{2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(stddev(xs), 0.0);

    // Regression pin for the N -> N-1 denominator switch: for {1, 3}
    // the old population statistic was 1.0; the sample statistic is
    // sqrt(2). Guard both so an accidental revert is caught.
    const std::vector<double> ys{1.0, 3.0};
    EXPECT_NEAR(stddev(ys), std::sqrt(2.0), 1e-12);
    EXPECT_GT(stddev(ys), 1.0 + 1e-9); // old N-denominator value

    // {1, 2, 3, 4}: population sqrt(1.25), sample sqrt(5/3).
    const std::vector<double> zs{1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(stddev(zs), std::sqrt(5.0 / 3.0), 1e-12);

    EXPECT_DOUBLE_EQ(stddev(std::vector<double>{7.0}), 0.0);
}

TEST(Stats, GeomeanSkipsNonPositiveValues)
{
    // A zero-cycle region must not abort a sweep: the zero is
    // skipped and the mean is over the surviving values.
    const std::vector<double> xs{1.0, 4.0, 0.0};
    EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
    const std::vector<double> neg{2.0, -3.0, 2.0};
    EXPECT_NEAR(geomean(neg), 2.0, 1e-12);
    const std::vector<double> all_bad{0.0, -1.0};
    EXPECT_DOUBLE_EQ(geomean(all_bad), 0.0);
}

TEST(Stats, HarmonicMeanSkipsNonPositiveValues)
{
    const std::vector<double> xs{1.0, 2.0, 0.0};
    EXPECT_NEAR(harmonicMean(xs), 4.0 / 3.0, 1e-12);
    const std::vector<double> all_bad{0.0};
    EXPECT_DOUBLE_EQ(harmonicMean(all_bad), 0.0);
}

TEST(Stats, MeanAbsRelError)
{
    const std::vector<double> proj{1.1, 0.9};
    const std::vector<double> ref{1.0, 1.0};
    EXPECT_NEAR(meanAbsRelError(proj, ref), 0.1, 1e-12);
}

TEST(Stats, RunningStatMoments)
{
    RunningStat rs;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        rs.add(x);
    EXPECT_EQ(rs.count(), 4u);
    EXPECT_DOUBLE_EQ(rs.mean(), 2.5);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 4.0);
    EXPECT_NEAR(rs.variance(), 1.25, 1e-12);
}

TEST(Stats, HistogramBucketsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0); // clamps into bucket 0
    h.add(0.5);
    h.add(9.9);
    h.add(100.0); // clamps into last bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceIsCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Table, RendersAllCells)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_EQ(t.numRows(), 3u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmt(1.234, 2), "1.23");
    EXPECT_EQ(fmtX(2.5, 1), "2.5x");
    EXPECT_EQ(fmtPct(0.402, 1), "40.2%");
}

} // namespace
} // namespace prism
