/**
 * @file
 * Concurrency tests for the exploration engine's thread pool:
 * coverage/ordering guarantees, nested submission, exception
 * propagation, the PRISM_THREADS override, and bit-exact equality of
 * a real Figure-12 sub-grid evaluated at 1 and N threads. Run under
 * -DPRISM_SANITIZE=thread to check for data races (ctest -L
 * concurrency).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    constexpr std::size_t n = 10'000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n,
                     [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroAndSingleItemLoops)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.parallelFor(0, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0);
    pool.parallelFor(1, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    const std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(64, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, DeterministicResultOrdering)
{
    ThreadPool serial(1);
    ThreadPool wide(4);
    const auto sq = [](std::size_t i) {
        return static_cast<long>(i * i);
    };
    const auto a = parallelMapIndex(serial, 500, sq);
    const auto b = parallelMapIndex(wide, 500, sq);
    ASSERT_EQ(a, b);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], static_cast<long>(i * i));
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(300);
    std::iota(items.begin(), items.end(), 0);
    const auto out =
        parallelMap(pool, items, [](int v) { return v * 3; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, NestedSubmissionMakesProgress)
{
    // Every outer item submits an inner loop to the *same* pool;
    // with all workers busy, the inner calls must still complete
    // because the submitting thread participates in execution.
    ThreadPool pool(4);
    constexpr std::size_t outer = 16;
    constexpr std::size_t inner = 32;
    std::atomic<std::size_t> total{0};
    pool.parallelFor(outer, [&](std::size_t) {
        pool.parallelFor(inner, [&](std::size_t) {
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), outer * inner);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("item 37");
                         }),
        std::runtime_error);

    // The pool stays usable after a throwing loop.
    std::atomic<int> ran{0};
    pool.parallelFor(50, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ChunkSizeForMath)
{
    // The automatic grain targets ~8 chunks per context.
    EXPECT_EQ(ThreadPool::chunkSizeFor(0, 4), 1u);
    EXPECT_EQ(ThreadPool::chunkSizeFor(1, 4), 1u);
    // n <= contexts * 8: one index per claim.
    EXPECT_EQ(ThreadPool::chunkSizeFor(32, 4), 1u);
    // Just past the threshold: ceil division kicks in.
    EXPECT_EQ(ThreadPool::chunkSizeFor(33, 4), 2u);
    EXPECT_EQ(ThreadPool::chunkSizeFor(1000, 1), 125u);
    EXPECT_EQ(ThreadPool::chunkSizeFor(1000, 4), 32u);
    // A degenerate context count never yields a zero chunk.
    EXPECT_EQ(ThreadPool::chunkSizeFor(10, 0), 10u);
}

TEST(ThreadPool, ChunkCountNeverExceedsItemCount)
{
    // Regression: tiny ranges on wide machines must not split into
    // more chunks than there are items — every context past the
    // item count would pay an empty inflight/next claim pair just to
    // find the range exhausted.
    const std::size_t ns[] = {1, 2, 3, 5, 7, 16, 100, 4096};
    const unsigned ctxs[] = {1, 2, 8, 64, 256, 4096};
    for (const std::size_t n : ns) {
        for (const unsigned c : ctxs) {
            const std::size_t chunk = ThreadPool::chunkSizeFor(n, c);
            ASSERT_GE(chunk, 1u) << "n=" << n << " contexts=" << c;
            const std::size_t chunks = (n + chunk - 1) / chunk;
            ASSERT_LE(chunks, n) << "n=" << n << " contexts=" << c;
        }
    }
    // n == 0 stays well-defined (no division by zero in the clamp).
    EXPECT_EQ(ThreadPool::chunkSizeFor(0, 4096), 1u);
}

TEST(ThreadPool, TinyLoopOnWidePoolRunsEveryIndexOnce)
{
    // Small n against many contexts: the auto grain now claims at
    // most n chunks, and only as many workers are woken as there are
    // stealable tasks. Correctness must be unaffected.
    ThreadPool pool(64);
    for (int round = 0; round < 20; ++round) {
        for (const std::size_t n : {1, 2, 3, 5}) {
            std::vector<std::atomic<int>> counts(n);
            pool.parallelFor(n, [&](std::size_t i) {
                counts[i].fetch_add(1);
            });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(counts[i].load(), 1)
                    << "n=" << n << " index " << i;
        }
    }
}

TEST(ThreadPool, ExplicitGrainCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 257; // prime: never divides evenly
    const std::size_t grains[] = {1, 3, 7, 64, 256, 1000};
    for (const std::size_t grain : grains) {
        std::vector<std::atomic<int>> counts(n);
        pool.parallelFor(
            n, [&](std::size_t i) { counts[i].fetch_add(1); },
            grain);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(counts[i].load(), 1)
                << "index " << i << " at grain " << grain;
    }
}

TEST(ThreadPool, ChunkedClaimStress)
{
    // Hammer the lock-free claim protocol: many short loops back to
    // back, grain 1 maximizing fetch-add contention on `next`.
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 97 + static_cast<std::size_t>(round);
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(
            n, [&](std::size_t i) { sum.fetch_add(i + 1); }, 1);
        ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
    }
}

TEST(ThreadPool, MapDeterministicAcrossGrains)
{
    // Result placement is by index, so the output must not depend on
    // the chunking grain or the pool width.
    ThreadPool serial(1);
    ThreadPool wide(4);
    constexpr std::size_t n = 1000;
    const auto ref = parallelMapIndex(serial, n, [](std::size_t i) {
        return static_cast<long>(i * 31 + 7);
    });
    const std::size_t grains[] = {1, 2, 17, 333};
    for (const std::size_t grain : grains) {
        std::vector<long> out(n);
        wide.parallelFor(
            n,
            [&](std::size_t i) {
                out[i] = static_cast<long>(i * 31 + 7);
            },
            grain);
        ASSERT_EQ(out, ref) << "grain " << grain;
    }
}

TEST(ThreadPool, MidChunkExceptionStopsRestOfChunk)
{
    // A single-chunk loop (grain >= n) runs inline on the caller, so
    // items after the throwing index in the same chunk must never
    // execute — the chunk body stops at the throw.
    ThreadPool pool(4);
    constexpr std::size_t n = 100;
    std::vector<std::atomic<int>> counts(n);
    EXPECT_THROW(pool.parallelFor(
                     n,
                     [&](std::size_t i) {
                         if (i == 10)
                             throw std::runtime_error("mid-chunk");
                         counts[i].fetch_add(1);
                     },
                     n),
                 std::runtime_error);
    for (std::size_t i = 0; i < 10; ++i)
        ASSERT_EQ(counts[i].load(), 1) << i;
    for (std::size_t i = 10; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 0) << i;
}

TEST(ThreadPool, ExceptionUnderChunkingSkipsUnclaimedChunks)
{
    // Fine-grained chunking: the first exception must poison the
    // claim cursor so unclaimed chunks are skipped, and the pool must
    // stay usable afterwards.
    ThreadPool pool(4);
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(pool.parallelFor(
                     10'000,
                     [&](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("early");
                         ran.fetch_add(1);
                     },
                     8),
                 std::runtime_error);
    EXPECT_LT(ran.load(), 10'000u); // i == 3 itself never counts
    std::atomic<int> after{0};
    pool.parallelFor(64, [&](std::size_t) { after.fetch_add(1); }, 4);
    EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, NestedSubmissionUnderChunking)
{
    // Nested loops with explicit grains: the inner call still makes
    // progress with every context busy, and each (outer, inner) pair
    // runs exactly once.
    ThreadPool pool(4);
    constexpr std::size_t outer = 24;
    constexpr std::size_t inner = 100;
    std::atomic<std::size_t> total{0};
    pool.parallelFor(
        outer,
        [&](std::size_t) {
            pool.parallelFor(
                inner, [&](std::size_t j) { total.fetch_add(j); }, 9);
        },
        2);
    EXPECT_EQ(total.load(), outer * (inner * (inner - 1) / 2));
}

TEST(ThreadPool, EffectiveContextsClampedToAvailableCpus)
{
    // size() reports the request; effectiveContexts() what actually
    // runs after the availableParallelism() clamp.
    const unsigned avail = availableParallelism();
    ThreadPool big(avail + 63);
    EXPECT_EQ(big.size(), avail + 63);
    if (!std::getenv("PRISM_OVERSUBSCRIBE"))
        EXPECT_EQ(big.effectiveContexts(), avail);
    ThreadPool one(1);
    EXPECT_EQ(one.effectiveContexts(), 1u);
    // A clamped pool still executes every index.
    std::atomic<int> ran{0};
    big.parallelFor(500, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, PrismThreadsEnvOverride)
{
    const char *saved = std::getenv("PRISM_THREADS");
    const std::string saved_val = saved ? saved : "";

    ::setenv("PRISM_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 3u);

    // Non-positive / garbage values fall back to the hardware count.
    ::setenv("PRISM_THREADS", "0", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    ::setenv("PRISM_THREADS", "banana", 1);
    EXPECT_GE(defaultThreadCount(), 1u);

    if (saved)
        ::setenv("PRISM_THREADS", saved_val.c_str(), 1);
    else
        ::unsetenv("PRISM_THREADS");
}

/**
 * The acceptance property of the exploration engine: a real Figure 12
 * sub-grid — (workload, core, BSA-subset) metric tuples — is
 * bit-identical whether evaluated serially or on a wide pool.
 */
TEST(ThreadPool, Fig12SubGridEqualAtOneAndManyThreads)
{
    const char *names[] = {"conv", "ilp-chain"};
    std::vector<std::unique_ptr<LoadedWorkload>> wls;
    for (const char *name : names)
        wls.push_back(LoadedWorkload::load(findWorkload(name)));
    const CoreKind cores[] = {CoreKind::IO2, CoreKind::OOO2};

    struct Point
    {
        Cycle cycles;
        PicoJoule energy;
        bool operator==(const Point &o) const
        {
            return cycles == o.cycles && energy == o.energy;
        }
    };

    const auto sweep = [&](ThreadPool &pool) {
        // Mutate phase: per-(workload, core) model construction.
        std::vector<std::unique_ptr<BenchmarkModel>> models(
            wls.size() * std::size(cores));
        pool.parallelFor(models.size(), [&](std::size_t i) {
            models[i] = std::make_unique<BenchmarkModel>(
                wls[i / std::size(cores)]->tdg(),
                cores[i % std::size(cores)]);
        });
        // Read phase: the 16-subset grid over const models.
        return parallelMapIndex(
            pool, models.size() * 16, [&](std::size_t i) {
                const BenchmarkModel &bm = *models[i / 16];
                const ExoResult r =
                    bm.evaluate(static_cast<unsigned>(i % 16));
                return Point{r.cycles, r.energy};
            });
    };

    ThreadPool serial(1);
    ThreadPool wide(4);
    const std::vector<Point> a = sweep(serial);
    const std::vector<Point> b = sweep(wide);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i] == b[i])
            << "grid point " << i << " diverged: " << a[i].cycles
            << "c/" << a[i].energy << "pJ vs " << b[i].cycles << "c/"
            << b[i].energy << "pJ";
    }
}

} // namespace
} // namespace prism
