/**
 * @file
 * Tests for the prism_serve daemon (src/serve/): protocol
 * robustness and serve correctness.
 *
 *  - robustness: truncated frames, oversized length prefixes (capped
 *    before allocation), unknown opcodes, empty frames, malformed
 *    bodies, and mid-request disconnects all produce clean Error
 *    replies or clean closes — the daemon neither crashes nor leaks
 *    (the ASan leg of scripts/check.sh runs this binary);
 *  - correctness: an EVAL reply fetched over the socket is
 *    byte-identical to the same point evaluated in-process through
 *    buildModelCached, for fixed and parametric configs, including
 *    under concurrent clients;
 *  - batching/admission: a held dispatcher turns queue overflow into
 *    immediate BUSY replies, and a drain completes every admitted
 *    request before closing connections.
 *
 * Labeled `serve` and `concurrency` (the TSan leg runs it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/thread_pool.hh"
#include "serve/client.hh"
#include "serve/eval.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/state.hh"
#include "workloads/suite.hh"

namespace prism::serve
{
namespace
{

constexpr std::uint64_t kTestInsts = 30'000;
const std::vector<std::string> kTestWorkloads = {"ilp-chain",
                                                 "mem-random"};

ServeOptions
testOptions()
{
    setMaxInstsOverride(kTestInsts);
    ServeOptions opts;
    opts.workloads = kTestWorkloads;
    opts.threads = 2;
    opts.queueDepth = 8;
    opts.batchMax = 4;
    return opts;
}

/** One server shared by the tests in this process (startup builds
 *  12 models; pay it once). The static destructor drains it, so
 *  every thread is joined before process exit — the sanitizer legs
 *  depend on that. */
struct SharedServer
{
    Server server{testOptions()};
    std::uint16_t port;

    SharedServer()
    {
        server.loadAndPrepare();
        port = server.start();
    }
};

SharedServer &
shared()
{
    static SharedServer s;
    return s;
}

std::uint16_t
sharedPort()
{
    return shared().port;
}

Client
connectShared()
{
    Client c;
    EXPECT_TRUE(c.connect("127.0.0.1", sharedPort()))
        << c.lastError();
    return c;
}

/** The in-process evaluation the wire replies must match byte for
 *  byte: same ResidentSuite shape, same eval functions, same
 *  encoders. */
ResidentSuite &
localSuite()
{
    static ResidentSuite *suite = [] {
        setMaxInstsOverride(kTestInsts);
        auto *s = new ResidentSuite;
        ThreadPool pool(2);
        s->loadAndPrepare(kTestWorkloads, pool);
        return s;
    }();
    return *suite;
}

std::vector<std::uint8_t>
expectedEvalBytes(const EvalRequest &req)
{
    EvalReply reply;
    const QueryOutcome outcome = runEval(localSuite(), req, reply);
    EXPECT_EQ(outcome.status, Status::Ok) << outcome.error;
    WireWriter w;
    encodeEvalReply(w, reply);
    return {w.bytes().begin(), w.bytes().end()};
}

// ---------------------------------------------------------------- //
// Basic liveness + metadata.
// ---------------------------------------------------------------- //

TEST(Serve, PingReportsProtocolVersion)
{
    Client c = connectShared();
    std::uint8_t version = 0;
    ASSERT_TRUE(c.ping(version)) << c.lastError();
    EXPECT_EQ(version, kProtocolVersion);
}

TEST(Serve, ListReturnsResidentWorkloads)
{
    Client c = connectShared();
    ListReply list;
    ASSERT_TRUE(c.list(list)) << c.lastError();
    EXPECT_EQ(list.workloads, kTestWorkloads);
}

TEST(Serve, StatsExposeServerAndRamCounters)
{
    Client c = connectShared();
    EvalRequest req;
    req.workload = "ilp-chain";
    req.config.kind = CoreKind::OOO4;
    req.mask = 3;
    EvalReply ignored;
    ASSERT_TRUE(c.eval(req, ignored)) << c.lastError();

    StatsReply stats;
    ASSERT_TRUE(c.stats(stats)) << c.lastError();
    EXPECT_GE(stats.evalQueries, 1u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_EQ(stats.residentWorkloads, kTestWorkloads.size());
    EXPECT_EQ(stats.residentModels,
              kTestWorkloads.size() * kAllCoreKinds.size());
    EXPECT_EQ(stats.queueCapacity, 8u);
    EXPECT_GT(stats.serviceNsTotal, 0u);
    // The resident models were built through the RAM tier.
    EXPECT_GT(stats.ramInsertions, 0u);
    EXPECT_LE(stats.ramBytes, stats.ramMaxBytes);
}

// ---------------------------------------------------------------- //
// Correctness: wire replies == in-process evaluation, byte for byte.
// ---------------------------------------------------------------- //

TEST(Serve, EvalMatchesInProcessEvaluationByteForByte)
{
    Client c = connectShared();
    for (const std::string &workload : kTestWorkloads) {
        for (const CoreKind kind :
             {CoreKind::IO2, CoreKind::OOO4, CoreKind::OOO6}) {
            for (const unsigned mask : {0u, 1u, 7u, 15u}) {
                EvalRequest req;
                req.workload = workload;
                req.config.kind = kind;
                req.mask = mask;
                req.sched = SchedulerKind::Oracle;
                WireWriter w;
                encodeEvalRequest(w, req);
                const auto reply = c.roundTrip(Op::Eval, w.bytes());
                ASSERT_TRUE(reply) << c.lastError();
                ASSERT_EQ(reply->status, Status::Ok);
                EXPECT_EQ(reply->body, expectedEvalBytes(req))
                    << workload << " mask " << mask;
            }
        }
    }
}

TEST(Serve, ParametricEvalMatchesInProcessEvaluation)
{
    // A core point outside the resident fixed set: the server
    // assembles it through buildModelCached on demand.
    EvalRequest req;
    req.workload = "mem-random";
    req.config.parametric = true;
    req.config.params = coreParams(CoreKind::OOO2);
    req.config.params.instWindow = 24;
    req.config.params.numAlu = 3;
    req.mask = 5;
    req.sched = SchedulerKind::AmdahlTree;
    req.areaBudget = 2.0;

    Client c = connectShared();
    WireWriter w;
    encodeEvalRequest(w, req);
    const auto reply = c.roundTrip(Op::Eval, w.bytes());
    ASSERT_TRUE(reply) << c.lastError();
    ASSERT_EQ(reply->status, Status::Ok);
    EXPECT_EQ(reply->body, expectedEvalBytes(req));
}

TEST(Serve, EvalIsDeterministicAcrossConcurrentClients)
{
    EvalRequest req;
    req.workload = "ilp-chain";
    req.config.kind = CoreKind::OOO4;
    req.mask = 11;
    const std::vector<std::uint8_t> expected =
        expectedEvalBytes(req);

    constexpr unsigned kClients = 4;
    constexpr unsigned kQueriesEach = 16;
    std::vector<unsigned> mismatches(kClients, 0);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            Client c;
            if (!c.connect("127.0.0.1", sharedPort())) {
                mismatches[t] = kQueriesEach;
                return;
            }
            WireWriter w;
            encodeEvalRequest(w, req);
            for (unsigned q = 0; q < kQueriesEach; ++q) {
                const auto reply = c.roundTrip(Op::Eval, w.bytes());
                if (!reply || reply->status != Status::Ok ||
                    reply->body != expected)
                    ++mismatches[t];
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (unsigned t = 0; t < kClients; ++t)
        EXPECT_EQ(mismatches[t], 0u) << "client " << t;
}

TEST(Serve, RankOrdersAllSubsetsBySpeedup)
{
    RankRequest req;
    req.workload = "mem-random";
    req.config.kind = CoreKind::OOO2;

    Client c = connectShared();
    RankReply reply;
    ASSERT_TRUE(c.rank(req, reply)) << c.lastError();
    ASSERT_EQ(reply.entries.size(), 16u);
    for (std::size_t i = 1; i < reply.entries.size(); ++i)
        EXPECT_GE(reply.entries[i - 1].speedup,
                  reply.entries[i].speedup);
    // Every mask appears exactly once.
    unsigned seen = 0;
    for (const RankEntry &e : reply.entries)
        seen |= 1u << e.mask;
    EXPECT_EQ(seen, 0xFFFFu);

    // And matches the in-process ranking exactly.
    RankReply local;
    ASSERT_EQ(runRank(localSuite(), req, local).status, Status::Ok);
    ASSERT_EQ(local.entries.size(), reply.entries.size());
    for (std::size_t i = 0; i < local.entries.size(); ++i) {
        EXPECT_EQ(local.entries[i].mask, reply.entries[i].mask);
        EXPECT_EQ(local.entries[i].speedup,
                  reply.entries[i].speedup);
    }
}

TEST(Serve, SweepMatchesInProcessFrontier)
{
    SweepRequest req;
    req.workload = "ilp-chain";
    req.numMasks = 4;
    req.budgets = {1.0, 4.0};

    SweepReply local;
    ASSERT_EQ(runSweep(localSuite(), req, local).status,
              Status::Ok);
    WireWriter w;
    encodeSweepReply(w, local);
    const std::vector<std::uint8_t> expected{w.bytes().begin(),
                                             w.bytes().end()};

    Client c = connectShared();
    WireWriter body;
    encodeSweepRequest(body, req);
    const auto reply = c.roundTrip(Op::Sweep, body.bytes());
    ASSERT_TRUE(reply) << c.lastError();
    ASSERT_EQ(reply->status, Status::Ok);
    EXPECT_EQ(reply->body, expected);
    EXPECT_GT(local.totalPoints, local.frontierPoints);
}

// ---------------------------------------------------------------- //
// Protocol robustness: hostile bytes never crash the daemon.
// ---------------------------------------------------------------- //

TEST(Serve, UnknownWorkloadIsCleanErrorAndConnectionSurvives)
{
    Client c = connectShared();
    EvalRequest req;
    req.workload = "no-such-workload";
    EvalReply out;
    EXPECT_FALSE(c.eval(req, out));
    EXPECT_NE(c.lastError().find("unknown workload"),
              std::string::npos)
        << c.lastError();
    // The connection stays usable after an Error reply.
    std::uint8_t version = 0;
    EXPECT_TRUE(c.ping(version)) << c.lastError();
}

TEST(Serve, UnknownOpcodeIsCleanError)
{
    Client c = connectShared();
    const std::uint8_t frame[] = {1, 0, 0, 0, 99}; // len=1, op=99
    ASSERT_TRUE(c.sendRaw(frame));
    const auto reply = c.readReply();
    ASSERT_TRUE(reply) << c.lastError();
    EXPECT_EQ(reply->status, Status::Error);
    EXPECT_NE(reply->error.find("unknown opcode"),
              std::string::npos);
    std::uint8_t version = 0;
    EXPECT_TRUE(c.ping(version)) << c.lastError();
}

TEST(Serve, EmptyFrameIsCleanError)
{
    Client c = connectShared();
    const std::uint8_t frame[] = {0, 0, 0, 0}; // len=0
    ASSERT_TRUE(c.sendRaw(frame));
    const auto reply = c.readReply();
    ASSERT_TRUE(reply) << c.lastError();
    EXPECT_EQ(reply->status, Status::Error);
    std::uint8_t version = 0;
    EXPECT_TRUE(c.ping(version)) << c.lastError();
}

TEST(Serve, MalformedBodyIsCleanError)
{
    Client c = connectShared();
    // Op::Eval with a garbage body (too short to decode).
    const std::uint8_t frame[] = {3, 0, 0, 0, 2, 0xDE, 0xAD};
    ASSERT_TRUE(c.sendRaw(frame));
    const auto reply = c.readReply();
    ASSERT_TRUE(reply) << c.lastError();
    EXPECT_EQ(reply->status, Status::Error);
    EXPECT_NE(reply->error.find("malformed"), std::string::npos)
        << reply->error;
    std::uint8_t version = 0;
    EXPECT_TRUE(c.ping(version)) << c.lastError();
}

TEST(Serve, OversizedLengthPrefixIsRejectedWithoutAllocation)
{
    Client c = connectShared();
    // 256 MiB length prefix: far over kMaxFrameBytes. The server
    // must reply (or close) without ever allocating the claimed
    // size — ASan/heap watermark would catch an attempt.
    const std::uint8_t frame[] = {0, 0, 0, 0x10};
    ASSERT_TRUE(c.sendRaw(frame));
    const auto reply = c.readReply();
    // The stream is unsynchronized after a bad prefix, so the server
    // sends one Error reply and closes.
    ASSERT_TRUE(reply) << c.lastError();
    EXPECT_EQ(reply->status, Status::Error);
    EXPECT_FALSE(c.readReply()); // closed after the error
    // The daemon itself is unharmed.
    std::uint8_t version = 0;
    Client fresh = connectShared();
    EXPECT_TRUE(fresh.ping(version));
}

TEST(Serve, TruncatedFrameThenDisconnectIsHandled)
{
    {
        Client c = connectShared();
        // Claim 100 bytes, deliver 3, vanish.
        const std::uint8_t partial[] = {100, 0, 0, 0, 2, 3, 4};
        ASSERT_TRUE(c.sendRaw(partial));
        c.close();
    }
    {
        // Disconnect mid-header too.
        Client c = connectShared();
        const std::uint8_t halfHeader[] = {100, 0};
        ASSERT_TRUE(c.sendRaw(halfHeader));
        c.close();
    }
    // Give the readers a moment to observe the closes, then verify
    // the daemon is healthy and counted the mid-frame cuts.
    Client c = connectShared();
    std::uint8_t version = 0;
    for (int attempt = 0; attempt < 50; ++attempt) {
        StatsReply stats;
        ASSERT_TRUE(c.stats(stats)) << c.lastError();
        if (stats.disconnects >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    StatsReply stats;
    ASSERT_TRUE(c.stats(stats)) << c.lastError();
    EXPECT_GE(stats.disconnects, 2u);
    EXPECT_TRUE(c.ping(version)) << c.lastError();
}

// ---------------------------------------------------------------- //
// Admission control and drain (dedicated servers: these manipulate
// dispatcher state and lifecycle).
// ---------------------------------------------------------------- //

TEST(Serve, QueueOverflowYieldsImmediateBusy)
{
    Server server(testOptions()); // queueDepth = 8
    server.loadAndPrepare();
    const std::uint16_t port = server.start();
    server.debugHoldBatches(true);

    Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", port)) << c.lastError();
    EvalRequest req;
    req.workload = "ilp-chain";
    req.config.kind = CoreKind::IO2;
    WireWriter w;
    encodeEvalRequest(w, req);

    // Fill the queue (dispatcher held, nothing drains), then one
    // more: the 9th must bounce with an immediate BUSY while the
    // first 8 wait.
    for (int i = 0; i < 9; ++i)
        ASSERT_TRUE(writeRequestFrame(c.fd(), Op::Eval, w.bytes()));
    const auto busy = c.readReply();
    ASSERT_TRUE(busy) << c.lastError();
    EXPECT_EQ(busy->status, Status::Busy);

    // Inline ops keep working while the queue is full.
    std::uint8_t version = 0;
    EXPECT_TRUE(c.ping(version)) << c.lastError();

    // Release the dispatcher: all 8 admitted requests complete Ok.
    server.debugHoldBatches(false);
    for (int i = 0; i < 8; ++i) {
        const auto reply = c.readReply();
        ASSERT_TRUE(reply) << "reply " << i << ": " << c.lastError();
        EXPECT_EQ(reply->status, Status::Ok) << "reply " << i;
    }
    const StatsReply stats = server.statsSnapshot();
    EXPECT_GE(stats.busyRejected, 1u);
    EXPECT_EQ(stats.queueHighWater, 8u);
    server.drainAndJoin();
}

TEST(Serve, DrainCompletesAdmittedWorkBeforeClosing)
{
    auto server = std::make_unique<Server>(testOptions());
    server->loadAndPrepare();
    const std::uint16_t port = server->start();
    server->debugHoldBatches(true);

    Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", port)) << c.lastError();
    EvalRequest req;
    req.workload = "mem-random";
    req.config.kind = CoreKind::OOO4;
    req.mask = 2;
    WireWriter w;
    encodeEvalRequest(w, req);
    constexpr int kQueued = 4;
    for (int i = 0; i < kQueued; ++i)
        ASSERT_TRUE(writeRequestFrame(c.fd(), Op::Eval, w.bytes()));

    // Wait until the reader has admitted all four (the held
    // dispatcher can't drain them), so the drain below provably
    // starts with a non-empty queue.
    while (server->statsSnapshot().queueHighWater <
           std::uint64_t(kQueued))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Drain while the requests are still parked in the queue: the
    // shutdown protocol must answer every admitted request before
    // closing the connection (the hold is released by stop).
    server->drainAndJoin();
    const StatsReply stats = server->statsSnapshot();
    EXPECT_EQ(stats.evalQueries, unsigned(kQueued));
    server.reset();

    // The replies were written before the close: all readable now,
    // then a clean EOF.
    const std::vector<std::uint8_t> expected = expectedEvalBytes(req);
    for (int i = 0; i < kQueued; ++i) {
        const auto reply = c.readReply();
        ASSERT_TRUE(reply) << "reply " << i << ": " << c.lastError();
        EXPECT_EQ(reply->status, Status::Ok);
        EXPECT_EQ(reply->body, expected);
    }
    EXPECT_FALSE(c.readReply());
    EXPECT_EQ(c.lastError(), "connection closed");
}

// ---------------------------------------------------------------- //
// Wire primitives (no server needed).
// ---------------------------------------------------------------- //

TEST(Protocol, ReaderIsBoundsCheckedAndPoisons)
{
    const std::uint8_t bytes[] = {1, 2, 3};
    WireReader r({bytes, sizeof bytes});
    std::uint32_t v = 0;
    EXPECT_FALSE(r.u32(v)); // 3 bytes can't yield a u32
    EXPECT_FALSE(r.ok());
    std::uint8_t b = 0;
    EXPECT_FALSE(r.u8(b)); // poisoned: nothing reads after a miss
    EXPECT_FALSE(r.done());
}

TEST(Protocol, RequestBodiesRoundTrip)
{
    EvalRequest eval;
    eval.workload = "w";
    eval.config.parametric = true;
    eval.config.params = coreParams(CoreKind::OOO4);
    eval.mask = 9;
    eval.sched = SchedulerKind::AmdahlTree;
    eval.areaBudget = 3.25;
    WireWriter w;
    encodeEvalRequest(w, eval);
    WireReader r(w.bytes());
    EvalRequest back;
    ASSERT_TRUE(decodeEvalRequest(r, back));
    EXPECT_EQ(back.workload, eval.workload);
    EXPECT_TRUE(back.config.parametric);
    EXPECT_EQ(back.config.params.instWindow,
              eval.config.params.instWindow);
    EXPECT_EQ(back.mask, eval.mask);
    EXPECT_EQ(back.sched, eval.sched);
    EXPECT_EQ(back.areaBudget, eval.areaBudget);
}

TEST(Protocol, DecodersRejectTrailingBytes)
{
    EvalRequest eval;
    eval.workload = "w";
    WireWriter w;
    encodeEvalRequest(w, eval);
    std::vector<std::uint8_t> extended{w.bytes().begin(),
                                       w.bytes().end()};
    extended.push_back(0); // one trailing byte
    WireReader r({extended.data(), extended.size()});
    EvalRequest back;
    EXPECT_FALSE(decodeEvalRequest(r, back));
}

TEST(Protocol, DecodersRejectOutOfRangeValues)
{
    {
        // mask >= 16
        EvalRequest eval;
        eval.workload = "w";
        WireWriter w;
        w.str(eval.workload);
        w.u8(0); // fixed config
        w.u8(static_cast<std::uint8_t>(CoreKind::IO2));
        w.u8(16); // bad mask
        w.u8(0);
        w.f64(0);
        WireReader r(w.bytes());
        EvalRequest back;
        EXPECT_FALSE(decodeEvalRequest(r, back));
    }
    {
        // unknown scheduler byte
        WireWriter w;
        w.str("w");
        w.u8(0);
        w.u8(static_cast<std::uint8_t>(CoreKind::IO2));
        w.u8(0);
        w.u8(7); // bad sched
        w.f64(0);
        WireReader r(w.bytes());
        EvalRequest back;
        EXPECT_FALSE(decodeEvalRequest(r, back));
    }
    {
        // unknown core kind
        WireWriter w;
        w.str("w");
        w.u8(0);
        w.u8(250); // bad kind
        w.u8(0);
        w.u8(0);
        w.f64(0);
        WireReader r(w.bytes());
        EvalRequest back;
        EXPECT_FALSE(decodeEvalRequest(r, back));
    }
}

} // namespace
} // namespace prism::serve
