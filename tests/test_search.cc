/**
 * @file
 * Tests for the generalized design-space search (tdg/search.hh) and
 * the RAM-tier memo cache behind it (common/memo_cache.hh):
 *
 *  - differential: a component-assembled BenchmarkModel is
 *    byte-identical to the monolithic one across every BSA mask,
 *    both schedulers, and parametric CoreParams points;
 *  - determinism: rendered search tables and Pareto frontiers are
 *    byte-identical across thread counts, and shards partition the
 *    parametric grid exactly;
 *  - MemoCache: LRU eviction under a byte budget, getOrCompute
 *    single-computation semantics, first-insertion-wins on races.
 *
 * Labeled `concurrency` so `ctest -L concurrency` (typically under
 * -DPRISM_SANITIZE=thread) exercises the parallel phases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/memo_cache.hh"
#include "common/thread_pool.hh"
#include "tdg/artifacts.hh"
#include "tdg/search.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

constexpr std::uint64_t kTestInsts = 40'000;

std::span<const WorkloadSpec>
testWorkloads()
{
    static const std::vector<WorkloadSpec> wls{
        findWorkload("ilp-chain"), findWorkload("mem-random")};
    return wls;
}

// ---------------------------------------------------------------- //
// Differential: component-memoized == monolithic.
// ---------------------------------------------------------------- //

TEST(Search, ComponentModelMatchesMonolithicEverywhere)
{
    // Two fixed kinds plus two parametric points, all 16 masks, both
    // schedulers: the component split may not change a single cycle
    // or picojoule anywhere.
    std::vector<CoreParams> cores = {coreParams(CoreKind::IO2),
                                     coreParams(CoreKind::OOO4)};
    CoreParams narrow = coreParams(CoreKind::OOO2);
    narrow.instWindow = 20;
    cores.push_back(narrow);
    CoreParams wide = coreParams(CoreKind::OOO4);
    wide.simdLanes = 8;
    wide.numAlu = 4;
    cores.push_back(wide);

    for (const WorkloadSpec &spec : testWorkloads()) {
        const auto lw = LoadedWorkload::load(spec, kTestInsts);
        for (const CoreParams &core : cores) {
            const PipelineConfig cfg = pipelineConfigFrom(core);
            const BenchmarkModel mono(lw->tdg(), cfg);
            // No disk cache: this exercises the RAM tier + cold
            // compute path of the component assembly.
            const auto memo = buildModelCached(
                nullptr, lw->name(), lw->tdg(), lw->maxInsts(), cfg);
            for (unsigned mask = 0; mask < 16; ++mask) {
                for (SchedulerKind sched :
                     {SchedulerKind::Oracle,
                      SchedulerKind::AmdahlTree}) {
                    const ExoResult a = mono.evaluate(mask, sched);
                    const ExoResult b = memo->evaluate(mask, sched);
                    ASSERT_EQ(a.cycles, b.cycles)
                        << spec.name << " " << coreParamsName(core)
                        << " mask " << mask;
                    ASSERT_EQ(a.energy, b.energy)
                        << spec.name << " " << coreParamsName(core)
                        << " mask " << mask;
                    ASSERT_EQ(a.unitCycles, b.unitCycles);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Grid and shard structure.
// ---------------------------------------------------------------- //

TEST(Search, GridOrderIsCoreMajorBudgetMidMaskMinor)
{
    SearchSpace space;
    space.cores = defaultCoreGrid();
    space.cores.resize(3);
    space.numMasks = 4;
    space.areaBudgets = {1.0, 2.0};

    DesignSearch search(space, testWorkloads());
    const auto points = search.shardPoints();
    ASSERT_EQ(points.size(), searchGridSize(search.space()));
    std::size_t gi = 0;
    for (std::size_t ci = 0; ci < 3; ++ci) {
        for (double budget : {1.0, 2.0}) {
            for (unsigned mask = 0; mask < 4; ++mask, ++gi) {
                ASSERT_EQ(points[gi].gridIndex, gi);
                ASSERT_EQ(points[gi].coreIdx, ci);
                ASSERT_EQ(points[gi].areaBudget, budget);
                ASSERT_EQ(points[gi].mask, mask);
            }
        }
    }
}

TEST(Search, ShardsPartitionTheParametricGridExactly)
{
    SearchSpace base;
    base.cores = sampleCoreParams(5, 7);
    base.numMasks = 8;
    base.areaBudgets = {0.0, 3.0};
    const std::size_t total = searchGridSize(base);
    ASSERT_EQ(total, 5u * 8u * 2u);

    for (unsigned count : {1u, 2u, 3u, 7u}) {
        std::vector<int> seen(total, 0);
        for (unsigned s = 0; s < count; ++s) {
            SearchSpace space = base;
            space.shardIndex = s;
            space.shardCount = count;
            DesignSearch search(space, testWorkloads());
            for (const SearchPoint &p : search.shardPoints()) {
                ASSERT_LT(p.gridIndex, total);
                ASSERT_EQ(p.gridIndex % count, s);
                ++seen[p.gridIndex];
            }
        }
        for (std::size_t i = 0; i < total; ++i)
            ASSERT_EQ(seen[i], 1)
                << "grid index " << i << " at " << count << " shards";
    }
}

TEST(Search, SampledCoresAreDeterministicAndPlausible)
{
    const auto a = sampleCoreParams(32, 42);
    const auto b = sampleCoreParams(32, 42);
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(coreParamsName(a[i]), coreParamsName(b[i]));
        EXPECT_GE(a[i].width, 1u);
        EXPECT_LE(a[i].width, 8u);
        EXPECT_GE(a[i].numAlu, 1u);
        if (!a[i].inorder) {
            EXPECT_GT(a[i].robSize, 0u);
            EXPECT_GT(a[i].instWindow, 0u);
        }
    }
    // A different seed actually changes the sample.
    const auto c = sampleCoreParams(32, 43);
    bool any_diff = false;
    for (std::size_t i = 0; i < c.size(); ++i)
        any_diff |= coreParamsName(a[i]) != coreParamsName(c[i]);
    EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------- //
// Determinism across thread counts.
// ---------------------------------------------------------------- //

TEST(Search, TablesByteIdenticalAcrossThreadCounts)
{
    SearchSpace space;
    space.cores = defaultCoreGrid();
    space.cores.resize(4);
    space.areaBudgets = {1.5, 0.0};

    auto render = [&](unsigned threads) {
        ThreadPool pool(threads);
        DesignSearch search(space, testWorkloads());
        search.prepare(pool);
        const auto points = search.run(pool);
        return renderSearchTable(points) +
               renderParetoFrontier(points);
    };
    const std::string serial = render(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, render(4));
    EXPECT_EQ(serial, render(3));
}

TEST(Search, ParetoFrontierIsInputOrderInvariant)
{
    SearchSpace space;
    space.cores = defaultCoreGrid();
    space.cores.resize(4);
    space.numMasks = 8;

    ThreadPool pool(2);
    DesignSearch search(space, testWorkloads());
    search.prepare(pool);
    auto points = search.run(pool);

    const auto frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());
    // Frontier members are mutually non-dominated.
    for (const SearchPoint &a : frontier) {
        for (const SearchPoint &b : frontier) {
            if (a.gridIndex == b.gridIndex)
                continue;
            const bool dom = a.speedup >= b.speedup &&
                             a.energyEff >= b.energyEff &&
                             a.area <= b.area &&
                             (a.speedup > b.speedup ||
                              a.energyEff > b.energyEff ||
                              a.area < b.area);
            EXPECT_FALSE(dom)
                << a.name << " dominates frontier member " << b.name;
        }
    }
    // Reversing (or shuffling) the input leaves the frontier
    // byte-identical.
    std::reverse(points.begin(), points.end());
    EXPECT_EQ(renderParetoFrontier(points),
              renderSearchTable(frontier));
}

// ---------------------------------------------------------------- //
// MemoCache (the RAM tier).
// ---------------------------------------------------------------- //

TEST(MemoCache, GetOrComputeComputesOnceThenHits)
{
    MemoCache cache(1 << 20);
    int computed = 0;
    auto make = [&] {
        ++computed;
        return std::make_shared<int>(41 + computed);
    };
    const auto a = cache.getOrCompute<int>(
        7, make, [](const int &) { return sizeof(int); });
    const auto b = cache.getOrCompute<int>(
        7, make, [](const int &) { return sizeof(int); });
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(*a, 42);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MemoCache, EvictsLeastRecentlyUsedUnderByteBudget)
{
    MemoCache cache(300);
    auto put = [&](std::uint64_t key) {
        cache.put(key, std::make_shared<int>(static_cast<int>(key)),
                  100);
    };
    put(1);
    put(2);
    put(3); // full: {1, 2, 3}
    EXPECT_NE(cache.get(1), nullptr); // 1 is now most recent
    put(4); // evicts 2, the least recently used
    EXPECT_EQ(cache.get(2), nullptr);
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_NE(cache.get(4), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.stats().bytes, cache.maxBytes());
}

TEST(MemoCache, OversizedEntryDoesNotStick)
{
    MemoCache cache(100);
    cache.put(1, std::make_shared<int>(1), 1000);
    // An entry larger than the whole budget is never retained; the
    // cache keeps working for fitting entries.
    EXPECT_EQ(cache.get(1), nullptr);
    cache.put(2, std::make_shared<int>(2), 50);
    EXPECT_NE(cache.get(2), nullptr);
}

TEST(MemoCache, FirstInsertionWinsOnDuplicateKey)
{
    MemoCache cache(1 << 10);
    const auto first = std::make_shared<int>(1);
    cache.put(5, first, 8);
    cache.put(5, std::make_shared<int>(2), 8);
    const auto got =
        std::static_pointer_cast<const int>(cache.get(5));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, 1);
}

TEST(MemoCache, ParallelGetOrComputeYieldsOneValue)
{
    MemoCache cache(1 << 20);
    ThreadPool pool(4);
    std::atomic<int> computes{0};
    std::vector<std::shared_ptr<const int>> got(64);
    pool.parallelFor(got.size(), [&](std::size_t i) {
        got[i] = cache.getOrCompute<int>(
            99,
            [&] {
                computes.fetch_add(1);
                return std::make_shared<int>(7);
            },
            [](const int &) { return sizeof(int); });
    });
    // Racing computes may happen (losers return their own identical
    // value), but every caller observes the same contents and the
    // cache retains exactly one winner.
    EXPECT_GE(computes.load(), 1);
    for (const auto &p : got) {
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, 7);
    }
    const auto cached =
        std::static_pointer_cast<const int>(cache.get(99));
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(*cached, 7);
}

TEST(MemoCache, CountersTrackEveryTransition)
{
    // Walk one instance through miss -> insert -> hit -> evict and
    // check each counter moves by exactly the expected amount (the
    // observability surface the serve daemon's STATS reply exposes).
    MemoCache cache(200);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().insertions, 0u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);

    EXPECT_EQ(cache.get(1), nullptr); // miss
    cache.put(1, std::make_shared<int>(1), 120);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.stats().bytes, 120u);

    EXPECT_NE(cache.get(1), nullptr); // hit
    EXPECT_EQ(cache.stats().hits, 1u);

    cache.put(2, std::make_shared<int>(2), 120); // evicts key 1
    EXPECT_EQ(cache.stats().insertions, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().bytes, 120u);

    // clear() drops residency but keeps the monotone counters.
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().insertions, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MemoCache, SummaryRendersCounters)
{
    MemoCache cache(1 << 20);
    EXPECT_EQ(cache.get(1), nullptr);
    cache.put(1, std::make_shared<int>(1), 64);
    EXPECT_NE(cache.get(1), nullptr);
    const std::string s = cache.summary();
    EXPECT_NE(s.find("1 hits"), std::string::npos) << s;
    EXPECT_NE(s.find("1 misses"), std::string::npos) << s;
    EXPECT_NE(s.find("1 insertions"), std::string::npos) << s;
    EXPECT_NE(s.find("50.0% hit"), std::string::npos) << s;
}

// ---------------------------------------------------------------- //
// Driver flag parsers (prism_search regression tests).
// ---------------------------------------------------------------- //

TEST(FlagParsers, ShardSpecAcceptsExactForm)
{
    unsigned idx = 99, cnt = 99;
    std::string err;
    ASSERT_TRUE(parseShardSpec("0/1", idx, cnt, err)) << err;
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(cnt, 1u);
    ASSERT_TRUE(parseShardSpec("3/8", idx, cnt, err)) << err;
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(cnt, 8u);
}

TEST(FlagParsers, ShardSpecRejectsOutOfRangeAndGarbage)
{
    unsigned idx = 0, cnt = 0;
    std::string err;
    // Index >= count and count == 0: the regressions this guards.
    EXPECT_FALSE(parseShardSpec("4/4", idx, cnt, err));
    EXPECT_NE(err.find("index"), std::string::npos) << err;
    EXPECT_FALSE(parseShardSpec("5/4", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("0/0", idx, cnt, err));
    EXPECT_NE(err.find("count"), std::string::npos) << err;
    // Malformed shapes sscanf used to let through.
    EXPECT_FALSE(parseShardSpec("1/4x", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("+1/4", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec(" 1/4", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("1/", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("/4", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("1-4", idx, cnt, err));
    EXPECT_FALSE(parseShardSpec("99999999999/4", idx, cnt, err));
}

TEST(FlagParsers, AreaBudgetsAcceptPositiveNumbers)
{
    std::vector<double> budgets;
    std::string err;
    ASSERT_TRUE(parseAreaBudgets("1.5", budgets, err)) << err;
    ASSERT_EQ(budgets.size(), 1u);
    EXPECT_DOUBLE_EQ(budgets[0], 1.5);
    ASSERT_TRUE(parseAreaBudgets("0.5,1,2.25", budgets, err)) << err;
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_DOUBLE_EQ(budgets[1], 1.0);
}

TEST(FlagParsers, AreaBudgetsRejectNonPositiveAndGarbage)
{
    std::vector<double> budgets{42.0};
    std::string err;
    // atof() silently turned these into 0.0 before; each must now be
    // a clear error, and a failed parse must not clobber the output.
    EXPECT_FALSE(parseAreaBudgets("abc", budgets, err));
    EXPECT_NE(err.find("not a number"), std::string::npos) << err;
    EXPECT_FALSE(parseAreaBudgets("1.5,abc", budgets, err));
    EXPECT_FALSE(parseAreaBudgets("0", budgets, err));
    EXPECT_FALSE(parseAreaBudgets("-2", budgets, err));
    EXPECT_NE(err.find("positive"), std::string::npos) << err;
    EXPECT_FALSE(parseAreaBudgets("1.5,", budgets, err));
    EXPECT_FALSE(parseAreaBudgets(",1.5", budgets, err));
    EXPECT_FALSE(parseAreaBudgets("", budgets, err));
    EXPECT_FALSE(parseAreaBudgets("1.5e", budgets, err));
    ASSERT_EQ(budgets.size(), 1u);
    EXPECT_DOUBLE_EQ(budgets[0], 42.0);
}

} // namespace
} // namespace prism
