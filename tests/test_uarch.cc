/**
 * @file
 * Unit and property tests for the µDG timing model: resource table
 * semantics, exact latencies of hand-built dependence graphs, and
 * monotonicity properties across core configurations.
 */

#include <gtest/gtest.h>

#include "uarch/core_config.hh"
#include "uarch/pipeline_model.hh"
#include "uarch/resource_table.hh"
#include "uarch/udg.hh"

namespace prism
{
namespace
{

// ---- ResourceTable ----

TEST(ResourceTable, GrantsUpToCapacityPerCycle)
{
    ResourceTable rt(2);
    EXPECT_EQ(rt.acquire(10), 10u);
    EXPECT_EQ(rt.acquire(10), 10u);
    EXPECT_EQ(rt.acquire(10), 11u); // third request spills over
}

TEST(ResourceTable, UnlimitedCapacity)
{
    ResourceTable rt(0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rt.acquire(5), 5u);
}

TEST(ResourceTable, MonotonicInRequestOrder)
{
    ResourceTable rt(1);
    Cycle prev = 0;
    for (int i = 0; i < 50; ++i) {
        const Cycle got = rt.acquire(3);
        EXPECT_GE(got, prev);
        prev = got;
    }
}

TEST(ResourceTable, SlidesWindowForward)
{
    ResourceTable rt(1, 1024);
    rt.acquire(0);
    // Jump far beyond the window: old reservations are forgotten.
    EXPECT_EQ(rt.acquire(1'000'000), 1'000'000u);
    EXPECT_EQ(rt.acquire(1'000'000), 1'000'001u);
}

TEST(ResourceTable, AcquireManyReturnsLast)
{
    ResourceTable rt(2);
    EXPECT_EQ(rt.acquireMany(10, 4), 11u); // 2@10, 2@11
}

// ---- Hand-built streams with exact expected timing ----

MInst
aluInst(std::int64_t dep = -1)
{
    MInst mi = MInst::core(Opcode::Add);
    if (dep >= 0)
        mi.dep[0] = dep;
    return mi;
}

TEST(Pipeline, EmptyStream)
{
    PipelineModel model({});
    EXPECT_EQ(model.run({}).cycles, 0u);
}

TEST(Pipeline, SerialChainLatencyDominates)
{
    // 20-instruction add chain: each E waits for predecessor's P.
    MStream s;
    for (int i = 0; i < 20; ++i)
        s.push_back(aluInst(i - 1));
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO4);
    const PipelineResult wide = PipelineModel(cfg).run(s);
    // Chain of 20 single-cycle ops: >= 20 cycles regardless of width.
    EXPECT_GE(wide.cycles, 20u);
    EXPECT_LE(wide.cycles, 20u + 15u); // pipeline fill slack
}

TEST(Pipeline, IndependentOpsBoundByWidth)
{
    MStream s;
    for (int i = 0; i < 400; ++i)
        s.push_back(aluInst());
    PipelineConfig cfg2;
    cfg2.core = coreConfig(CoreKind::OOO2);
    PipelineConfig cfg6;
    cfg6.core = coreConfig(CoreKind::OOO6);
    const Cycle c2 = PipelineModel(cfg2).run(s).cycles;
    const Cycle c6 = PipelineModel(cfg6).run(s).cycles;
    EXPECT_GE(c2, 400u / 2);
    EXPECT_LT(c6, c2);
    // OOO2 limited by its 2 ALUs: about 200 cycles.
    EXPECT_NEAR(static_cast<double>(c2), 200.0, 30.0);
}

TEST(Pipeline, LoadLatencyExposed)
{
    MStream s;
    MInst ld = MInst::core(Opcode::Ld);
    ld.memLat = 100;
    s.push_back(ld);
    s.push_back(aluInst(0)); // uses the load
    const PipelineResult res = PipelineModel({}).run(s);
    EXPECT_GE(res.cycles, 100u);
}

TEST(Pipeline, MispredictStallsFetch)
{
    MStream clean;
    MStream dirty;
    for (int i = 0; i < 100; ++i) {
        MInst br = MInst::core(Opcode::Br);
        br.mispredicted = (i % 4 == 0);
        dirty.push_back(br);
        MInst ok = MInst::core(Opcode::Br);
        clean.push_back(ok);
        for (int k = 0; k < 3; ++k) {
            clean.push_back(aluInst());
            dirty.push_back(aluInst());
        }
    }
    const Cycle c_clean = PipelineModel({}).run(clean).cycles;
    const Cycle c_dirty = PipelineModel({}).run(dirty).cycles;
    EXPECT_GT(c_dirty, c_clean + 100);
}

TEST(Pipeline, StoreToLoadForwardingOrdersAccesses)
{
    MStream s;
    MInst st = MInst::core(Opcode::St);
    st.lat = 1;
    s.push_back(st);
    MInst ld = MInst::core(Opcode::Ld);
    ld.memLat = 4;
    ld.memDep = 0;
    s.push_back(ld);
    const PipelineResult res = PipelineModel({}).run(s, true);
    // Load executes only after the store completes.
    EXPECT_GE(res.completeAt[1], res.completeAt[0] + 4);
}

TEST(Pipeline, InorderSerializesIndependentWork)
{
    // Repeated long-latency loads, each with a dependent consumer:
    // the OOO core overlaps the miss shadows inside its window, the
    // in-order core stalls issue at every consumer and serializes
    // them.
    MStream s;
    for (int g = 0; g < 10; ++g) {
        MInst ld = MInst::core(Opcode::Ld);
        ld.memLat = 50;
        const auto ld_idx = static_cast<std::int64_t>(s.size());
        s.push_back(ld);
        s.push_back(aluInst(ld_idx)); // stalls in-order issue
        for (int i = 0; i < 4; ++i)
            s.push_back(aluInst());
    }
    PipelineConfig io;
    io.core = coreConfig(CoreKind::IO2);
    PipelineConfig ooo;
    ooo.core = coreConfig(CoreKind::OOO2);
    const Cycle c_io = PipelineModel(io).run(s).cycles;
    const Cycle c_ooo = PipelineModel(ooo).run(s).cycles;
    // In-order pays ~10 x 50 cycles; OOO overlaps misses.
    EXPECT_GT(c_io, 450u);
    EXPECT_LT(c_ooo, c_io / 2);
}

TEST(Pipeline, RegionSerializationBarrier)
{
    MStream s;
    MInst ld = MInst::core(Opcode::Ld);
    ld.memLat = 200;
    s.push_back(ld);
    MInst next = aluInst(); // independent...
    next.startRegion = true; // ...but a region boundary
    s.push_back(next);
    const PipelineResult res = PipelineModel({}).run(s, true);
    EXPECT_GE(res.completeAt[1], 200u);
}

TEST(Pipeline, AccelDataflowSkipsFrontend)
{
    // 200 independent single-cycle dataflow ops at issue width 6
    // finish much faster than a width-2 core could fetch them.
    MStream accel;
    for (int i = 0; i < 200; ++i) {
        MInst mi;
        mi.op = Opcode::CfuOp;
        mi.unit = ExecUnit::Nsdf;
        mi.fu = FuClass::IntAlu;
        mi.lat = 1;
        accel.push_back(mi);
    }
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const Cycle c = PipelineModel(cfg).run(accel).cycles;
    EXPECT_LT(c, 200u / 2);
    // Writeback bus (width 3) is the binding constraint.
    EXPECT_GE(c, 200u / 3);
}

TEST(Pipeline, AccelWindowLimitsOverlap)
{
    // Long-latency dataflow loads: the operand-storage window bounds
    // how many can be in flight.
    MStream accel;
    for (int i = 0; i < 256; ++i) {
        MInst mi;
        mi.op = Opcode::Ld;
        mi.unit = ExecUnit::Tracep;
        mi.fu = FuClass::Mem;
        mi.isLoad = true;
        mi.memLat = 100;
        accel.push_back(mi);
    }
    PipelineConfig cfg;
    const Cycle c = PipelineModel(cfg).run(accel).cycles;
    // 256 loads, window 64, 100-cycle latency: at least 4 full
    // latency epochs... but memPorts=2 dominates: 128 cycles min.
    EXPECT_GE(c, 128u);
}

TEST(Pipeline, EventCountsMatchStream)
{
    MStream s;
    for (int i = 0; i < 10; ++i)
        s.push_back(aluInst());
    MInst ld = MInst::core(Opcode::Ld);
    ld.memLat = 30; // beyond L1 -> counts as L2 access
    s.push_back(ld);
    MInst st = MInst::core(Opcode::St);
    s.push_back(st);
    MInst br = MInst::core(Opcode::Br);
    br.mispredicted = true;
    s.push_back(br);
    const PipelineResult res = PipelineModel({}).run(s);
    EXPECT_EQ(res.events.coreFetches, 13u);
    EXPECT_EQ(res.events.loads, 1u);
    EXPECT_EQ(res.events.l2Accesses, 1u);
    EXPECT_EQ(res.events.memAccesses, 0u);
    EXPECT_EQ(res.events.stores, 1u);
    EXPECT_EQ(res.events.branches, 1u);
    EXPECT_EQ(res.events.mispredicts, 1u);
}

TEST(Pipeline, CommitTimesMonotonic)
{
    MStream s;
    for (int i = 0; i < 100; ++i) {
        MInst mi = aluInst(i > 0 && i % 7 == 0 ? i - 3 : -1);
        s.push_back(mi);
    }
    const PipelineResult res = PipelineModel({}).run(s, true);
    for (std::size_t i = 1; i < res.commitAt.size(); ++i)
        EXPECT_GE(res.commitAt[i], res.commitAt[i - 1]);
}

// ---- Parameterized width sweep: wider cores never slower ----

class WidthSweep : public ::testing::TestWithParam<CoreKind>
{
};

TEST_P(WidthSweep, MixedStreamTimingSane)
{
    MStream s;
    for (int i = 0; i < 500; ++i) {
        if (i % 5 == 0) {
            MInst ld = MInst::core(Opcode::Ld);
            ld.memLat = 4;
            s.push_back(ld);
        } else {
            s.push_back(aluInst(i % 3 == 0 ? i - 1 : -1));
        }
    }
    PipelineConfig cfg;
    cfg.core = coreConfig(GetParam());
    const PipelineResult res = PipelineModel(cfg).run(s);
    EXPECT_GT(res.cycles, 0u);
    // IPC cannot exceed the core width.
    EXPECT_LE(res.ipc(s.size()),
              static_cast<double>(cfg.core.width) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCores, WidthSweep,
    ::testing::Values(CoreKind::IO2, CoreKind::OOO1, CoreKind::OOO2,
                      CoreKind::OOO4, CoreKind::OOO6,
                      CoreKind::OOO8));

TEST(Pipeline, WidthMonotonicity)
{
    MStream s;
    for (int i = 0; i < 2000; ++i)
        s.push_back(aluInst(i % 4 == 1 ? i - 1 : -1));
    Cycle prev = ~Cycle{0};
    for (CoreKind k :
         {CoreKind::OOO1, CoreKind::OOO2, CoreKind::OOO4,
          CoreKind::OOO6, CoreKind::OOO8}) {
        PipelineConfig cfg;
        cfg.core = coreConfig(k);
        const Cycle c = PipelineModel(cfg).run(s).cycles;
        EXPECT_LE(c, prev) << coreConfig(k).name;
        prev = c;
    }
}

TEST(CoreConfig, Table4Values)
{
    EXPECT_TRUE(coreConfig(CoreKind::IO2).inorder);
    EXPECT_EQ(coreConfig(CoreKind::OOO2).robSize, 64u);
    EXPECT_EQ(coreConfig(CoreKind::OOO4).robSize, 168u);
    EXPECT_EQ(coreConfig(CoreKind::OOO6).robSize, 192u);
    EXPECT_EQ(coreConfig(CoreKind::OOO6).width, 6u);
    EXPECT_EQ(coreConfig(CoreKind::OOO4).dcachePorts, 2u);
    EXPECT_EQ(coreKindFromName("OOO4"), CoreKind::OOO4);
}

TEST(Udg, CheckStreamFlagsViolations)
{
    MStream s;
    MInst bad = aluInst();
    bad.dep[0] = 5; // forward
    s.push_back(bad);
    EXPECT_FALSE(checkStream(s).empty());

    MStream good;
    good.push_back(aluInst());
    good.push_back(aluInst(0));
    EXPECT_TRUE(checkStream(good).empty());
}

TEST(Pipeline, BindingAttributionSerialChain)
{
    MStream s;
    for (int i = 0; i < 500; ++i)
        s.push_back(aluInst(i - 1));
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO4);
    const PipelineResult res = PipelineModel(cfg).run(s);
    EXPECT_EQ(res.binding.total(), s.size());
    EXPECT_GT(res.binding.fraction(BindKind::DataDep), 0.9);
}

TEST(Pipeline, BindingAttributionFrontendBound)
{
    MStream s;
    for (int i = 0; i < 500; ++i)
        s.push_back(aluInst()); // independent
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::IO2); // 2 ALUs, width 2
    const PipelineResult res = PipelineModel(cfg).run(s);
    // Nothing depends on anything: frontend + FU contention bind.
    EXPECT_GT(res.binding.fraction(BindKind::Frontend) +
                  res.binding.fraction(BindKind::FuBusy),
              0.9);
    EXPECT_LT(res.binding.fraction(BindKind::DataDep), 0.05);
}

TEST(Pipeline, BindingAttributionPortBound)
{
    MStream s;
    for (int i = 0; i < 600; ++i) {
        MInst ld = MInst::core(Opcode::Ld);
        ld.memLat = 4;
        s.push_back(ld); // 1 D$ port on OOO2
    }
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineResult res = PipelineModel(cfg).run(s);
    EXPECT_GT(res.binding.fraction(BindKind::FuBusy), 0.5);
}

TEST(Pipeline, BindKindNamesComplete)
{
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(BindKind::NumKinds); ++k) {
        EXPECT_NE(bindKindName(static_cast<BindKind>(k)),
                  nullptr);
    }
}

TEST(Udg, EventCountsAccumulate)
{
    EventCounts a;
    a.loads = 3;
    a.unitInsts[0] = 5;
    EventCounts b;
    b.loads = 4;
    b.unitInsts[0] = 6;
    a += b;
    EXPECT_EQ(a.loads, 7u);
    EXPECT_EQ(a.unitInsts[0], 11u);
}

} // namespace
} // namespace prism
