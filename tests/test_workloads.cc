/**
 * @file
 * Workload-suite tests: every registered kernel builds, verifies,
 * traces, and exhibits the behavioral profile its suite class claims
 * (the Figure 6 behavior-space properties the kernels were designed
 * to have).
 */

#include <gtest/gtest.h>

#include "prog/verifier.hh"
#include "tdg/analyzer.hh"
#include "trace/trace_stats.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

TEST(Suite, RegistryShape)
{
    const auto all = allWorkloads();
    EXPECT_GE(all.size(), 40u); // Table 3: "more than 40 benchmarks"
    int regular = 0;
    int semi = 0;
    int irregular = 0;
    for (const WorkloadSpec &w : all) {
        switch (w.cls) {
          case SuiteClass::Regular: ++regular; break;
          case SuiteClass::SemiRegular: ++semi; break;
          case SuiteClass::Irregular: ++irregular; break;
        }
    }
    EXPECT_GE(regular, 10);
    EXPECT_GE(semi, 10);
    EXPECT_GE(irregular, 10);
    EXPECT_GE(microbenchmarks().size(), 6u);
}

TEST(Suite, FindWorkloadLocatesBothLists)
{
    EXPECT_STREQ(findWorkload("conv").name, "conv");
    EXPECT_STREQ(findWorkload("ilp-chain").name, "ilp-chain");
}

TEST(Suite, NamesAreUnique)
{
    std::set<std::string> names;
    for (const WorkloadSpec &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
    for (const WorkloadSpec &w : microbenchmarks())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

/** Workload kernels build into verifiable programs and real traces. */
class AllWorkloads
    : public ::testing::TestWithParam<const WorkloadSpec *>
{
};

TEST_P(AllWorkloads, BuildsVerifiesAndTraces)
{
    const WorkloadSpec &spec = *GetParam();
    const auto lw = LoadedWorkload::load(spec, 60'000);
    EXPECT_TRUE(check(lw->program()).empty());
    const Trace &trace = lw->tdg().trace();
    ASSERT_GT(trace.size(), 1000u) << spec.name;
    // Dependence indices always point backwards.
    for (DynId i = 0; i < std::min<DynId>(trace.size(), 5000); ++i) {
        for (std::int64_t p : trace[i].srcProd) {
            EXPECT_LT(p, static_cast<std::int64_t>(i));
        }
        EXPECT_LT(trace[i].memProd, static_cast<std::int64_t>(i));
    }
    // Every workload has at least one loop.
    EXPECT_GE(lw->tdg().loops().numLoops(), 1u) << spec.name;
}

std::vector<const WorkloadSpec *>
allSpecs()
{
    std::vector<const WorkloadSpec *> v;
    for (const WorkloadSpec &w : allWorkloads())
        v.push_back(&w);
    for (const WorkloadSpec &w : microbenchmarks())
        v.push_back(&w);
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllWorkloads, ::testing::ValuesIn(allSpecs()),
    [](const ::testing::TestParamInfo<const WorkloadSpec *> &info) {
        std::string name = info.param->name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---- Behavioral-profile spot checks (Figure 6 placement) ----

TEST(Behavior, ConvIsVectorizable)
{
    const auto lw = LoadedWorkload::load(findWorkload("conv"));
    const TdgAnalyzer an(lw->tdg());
    bool any = false;
    for (const Loop &loop : lw->tdg().loops().loops())
        any |= an.simd(loop.id).usable();
    EXPECT_TRUE(any);
}

TEST(Behavior, MergeHasCriticalVaryingControl)
{
    const auto lw = LoadedWorkload::load(findWorkload("merge"));
    const TdgAnalyzer an(lw->tdg());
    for (const Loop &loop : lw->tdg().loops().loops()) {
        EXPECT_FALSE(an.simd(loop.id).usable());
        EXPECT_FALSE(an.tracep(loop.id).usable()); // no hot path
    }
    const TraceStats st = computeStats(lw->tdg().trace());
    EXPECT_GT(st.mispredictRate(), 0.10); // unpredictable compare
}

TEST(Behavior, NeedleHasCarriedMemoryDependence)
{
    const auto lw = LoadedWorkload::load(findWorkload("needle"));
    const Tdg &tdg = lw->tdg();
    bool carried = false;
    for (const Loop &loop : tdg.loops().loops()) {
        if (loop.innermost)
            carried |= tdg.memProfile(loop.id).loopCarriedStoreToLoad;
    }
    EXPECT_TRUE(carried);
}

TEST(Behavior, Tpch1HasHotTrace)
{
    const auto lw = LoadedWorkload::load(findWorkload("tpch1"));
    const TdgAnalyzer an(lw->tdg());
    bool hot = false;
    for (const Loop &loop : lw->tdg().loops().loops())
        hot |= an.tracep(loop.id).usable();
    EXPECT_TRUE(hot); // the biased date predicate
}

TEST(Behavior, McfIsMemoryBound)
{
    const auto lw = LoadedWorkload::load(findWorkload("181.mcf"));
    const TraceStats st = computeStats(lw->tdg().trace());
    // Pointer chasing over a 128KiB working set misses often.
    EXPECT_GT(st.avgLoadLatency(), 8.0);
}

TEST(Behavior, MediabenchUsesDistinctPhases)
{
    // cjpeg has a vectorizable DCT phase and a non-vectorizable
    // entropy phase.
    const auto lw = LoadedWorkload::load(findWorkload("cjpeg-1"));
    const TdgAnalyzer an(lw->tdg());
    int vectorizable = 0;
    int scalar_only = 0;
    for (const Loop &loop : lw->tdg().loops().loops()) {
        if (!loop.innermost)
            continue;
        if (an.simd(loop.id).usable())
            ++vectorizable;
        else
            ++scalar_only;
    }
    EXPECT_GE(vectorizable, 1);
    EXPECT_GE(scalar_only, 1);
}

TEST(Behavior, SuiteClassesDifferInBranchBehavior)
{
    // Aggregate mispredict rates must order irregular > regular.
    auto rate = [](const char *name) {
        const auto lw =
            LoadedWorkload::load(findWorkload(name), 100'000);
        return computeStats(lw->tdg().trace()).mispredictRate();
    };
    const double regular = (rate("conv") + rate("mm")) / 2;
    const double irregular =
        (rate("458.sjeng") + rate("473.astar")) / 2;
    EXPECT_LT(regular, irregular);
}

} // namespace
} // namespace prism
