/**
 * @file
 * Unit tests for the simulation substrate: guest memory, caches,
 * branch predictors, the interpreter (architectural semantics and
 * dependence tracking), and trace generation.
 */

#include <gtest/gtest.h>

#include <bit>

#include "prog/builder.hh"
#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"
#include "sim/memory.hh"
#include "sim/trace_gen.hh"
#include "workloads/kernel_util.hh"

namespace prism
{
namespace
{

// ---- SimMemory ----

TEST(Memory, ZeroInitialized)
{
    SimMemory mem;
    EXPECT_EQ(mem.read(0x1234, 8), 0u);
}

TEST(Memory, ReadBackAllSizes)
{
    SimMemory mem;
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        mem.write(0x1000, 0xA1B2C3D4E5F60708ull, size);
        const std::uint64_t mask =
            size == 8 ? ~0ull : ((1ull << (8 * size)) - 1);
        EXPECT_EQ(mem.read(0x1000, size),
                  0xA1B2C3D4E5F60708ull & mask);
    }
}

TEST(Memory, CrossPageAccess)
{
    SimMemory mem;
    const Addr addr = 0x1FFF; // straddles a 4K page boundary
    mem.writeI64(addr, 0x1122334455667788);
    EXPECT_EQ(mem.readI64(addr), 0x1122334455667788);
    EXPECT_GE(mem.numPages(), 2u);
}

TEST(Memory, TypedAccessors)
{
    SimMemory mem;
    mem.writeF64(64, 3.25);
    EXPECT_DOUBLE_EQ(mem.readF64(64), 3.25);
    mem.writeI32(128, -7);
    EXPECT_EQ(mem.readI32(128), -7);
}

// ---- Cache ----

TEST(Cache, HitAfterMiss)
{
    Cache c({1024, 2, 64, 4});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13F)); // same line
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets -> 256B total.
    Cache c({256, 2, 64, 4});
    // Three lines mapping to set 0 (stride = 2*64).
    c.access(0 * 128);
    c.access(2 * 128);
    c.access(4 * 128);       // evicts line 0 (LRU)
    EXPECT_TRUE(c.access(2 * 128));
    EXPECT_FALSE(c.access(0 * 128)); // was evicted
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c({1024, 2, 64, 4});
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
}

TEST(Cache, WorkingSetSmallerThanCacheHasOnlyColdMisses)
{
    Cache c({64 * 1024, 2, 64, 4});
    for (int round = 0; round < 4; ++round) {
        for (Addr a = 0; a < 32 * 1024; a += 64)
            c.access(a);
    }
    EXPECT_EQ(c.misses(), 32u * 1024 / 64);
}

TEST(CacheHierarchy, LatenciesTiered)
{
    CacheHierarchy h;
    const unsigned first = h.load(0x4000);   // cold: via DRAM
    EXPECT_GT(first, 100u);
    const unsigned second = h.load(0x4000);  // L1 hit
    EXPECT_EQ(second, 4u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions)
{
    HierarchyConfig cfg;
    cfg.l1d = {1024, 2, 64, 4}; // tiny L1
    CacheHierarchy h(cfg);
    // Fill way beyond L1 but within L2.
    for (Addr a = 0; a < 64 * 1024; a += 64)
        h.load(a);
    // Re-access: L1 misses but L2 hits -> latency 4+22.
    const unsigned lat = h.load(0);
    EXPECT_EQ(lat, 26u);
}

// ---- Branch predictors ----

TEST(BranchPred, BimodalLearnsBias)
{
    BimodalPredictor p;
    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        if (!p.predictAndUpdate(42, true))
            ++wrong;
    }
    EXPECT_LE(wrong, 1);
}

TEST(BranchPred, GshareLearnsPattern)
{
    GsharePredictor p;
    // Period-4 pattern: T T T N — bimodal cannot learn this fully,
    // gshare can after warmup.
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = (i % 4) != 3;
        if (!p.predictAndUpdate(7, taken) && i > 100)
            ++wrong;
    }
    EXPECT_LE(wrong, 5);
}

TEST(BranchPred, TournamentAtLeastAsGoodAsBiasedBimodal)
{
    TournamentPredictor p;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = (i % 4) != 3;
        if (!p.predictAndUpdate(9, taken) && i > 100)
            ++wrong;
    }
    EXPECT_LE(wrong, 10);
}

TEST(BranchPred, ResetClearsState)
{
    GsharePredictor p;
    for (int i = 0; i < 50; ++i)
        p.predictAndUpdate(3, false);
    p.reset();
    EXPECT_TRUE(p.predict(3)); // back to weakly-taken init
}

class PredictorKindTest
    : public ::testing::TestWithParam<PredictorKind>
{
};

TEST_P(PredictorKindTest, AlwaysTakenLoopBranchesPredictWell)
{
    auto p = makePredictor(GetParam());
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        if (!p->predictAndUpdate(5, true))
            ++wrong;
    }
    EXPECT_LE(wrong, 2);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PredictorKindTest,
                         ::testing::Values(PredictorKind::Tournament,
                                           PredictorKind::Gshare,
                                           PredictorKind::Bimodal,
                                           PredictorKind::AlwaysTaken));

// ---- Interpreter ----

/** Run a single-function program and return (result, trace). */
std::pair<RunResult, Trace>
runProgram(const Program &p, SimMemory &mem,
           const std::vector<std::int64_t> &args)
{
    Trace trace(&p);
    Interpreter interp(p, mem);
    auto res = interp.run(args, [&trace](DynInst &di) {
        trace.push(di);
    });
    return {res, std::move(trace)};
}

TEST(Interpreter, ArithmeticSemantics)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId a = f.movi(10);
    const RegId b = f.movi(3);
    const RegId q = f.div(a, b);
    const RegId r = f.rem(a, b);
    const RegId s = f.shl(b, f.movi(2));
    const RegId sum = f.add(f.add(q, r), s);
    f.ret(sum);
    const Program p = pb.build();
    SimMemory mem;
    auto [res, trace] = runProgram(p, mem, {});
    EXPECT_EQ(res.returnValue, 3 + 1 + 12);
}

TEST(Interpreter, FloatingPointSemantics)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId x = f.fmovi(2.0);
    const RegId y = f.fmovi(3.0);
    const RegId m = f.fma(x, y, f.fmovi(1.0)); // 7.0
    const RegId s = f.fsqrt(f.fmovi(16.0));    // 4.0
    const RegId sum = f.fadd(m, s);            // 11.0
    f.ret(f.cvtfi(sum));
    const Program p = pb.build();
    SimMemory mem;
    auto [res, trace] = runProgram(p, mem, {});
    EXPECT_EQ(res.returnValue, 11);
}

TEST(Interpreter, LoadSignExtends)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId v = f.ld(f.arg(0), 0, 4);
    f.ret(v);
    const Program p = pb.build();
    SimMemory mem;
    mem.writeI32(0x1000, -5);
    auto [res, trace] = runProgram(p, mem, {0x1000});
    EXPECT_EQ(res.returnValue, -5);
}

TEST(Interpreter, ControlFlowAndLoop)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 10, 1,
                [&](RegId i) { f.addTo(acc, acc, i); });
    f.ret(acc);
    const Program p = pb.build();
    SimMemory mem;
    auto [res, trace] = runProgram(p, mem, {});
    EXPECT_EQ(res.returnValue, 45);
}

TEST(Interpreter, CallAndReturnValueFlow)
{
    ProgramBuilder pb;
    auto &leaf = pb.func("leaf", 2);
    leaf.ret(leaf.mul(leaf.arg(0), leaf.arg(1)));
    auto &f = pb.func("main", 0);
    const RegId r = f.call(leaf.id(), {f.movi(6), f.movi(7)});
    f.ret(r);
    const Program p = pb.build();
    SimMemory mem;
    auto [res, trace] = runProgram(p, mem, {});
    EXPECT_EQ(res.returnValue, 42);
}

TEST(Interpreter, RegisterDependencesPointAtProducers)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId a = f.movi(1); // dyn 0
    const RegId b = f.movi(2); // dyn 1
    const RegId c = f.add(a, b); // dyn 2: deps {0, 1}
    f.ret(c);
    const Program p = pb.build();
    SimMemory mem;
    auto [res, trace] = runProgram(p, mem, {});
    ASSERT_GE(trace.size(), 3u);
    EXPECT_EQ(trace[2].srcProd[0], 0);
    EXPECT_EQ(trace[2].srcProd[1], 1);
    EXPECT_EQ(trace[0].srcProd[0], kNoProducer);
}

TEST(Interpreter, MemoryDependenceStoreToLoad)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId v = f.movi(99);
    f.st(f.arg(0), 0, v);        // dyn 1
    const RegId w = f.ld(f.arg(0), 0); // dyn 2: memProd = 1
    f.ret(w);
    const Program p = pb.build();
    SimMemory mem;
    auto [res, trace] = runProgram(p, mem, {0x2000});
    EXPECT_EQ(res.returnValue, 99);
    ASSERT_GE(trace.size(), 3u);
    EXPECT_EQ(trace[2].memProd, 1);
    EXPECT_EQ(trace[2].effAddr, 0x2000u);
}

TEST(Interpreter, InstLimitHonored)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const std::int32_t loop = f.newBlock();
    f.jmp(loop);
    f.setBlock(loop);
    f.jmp(loop); // infinite
    const Program p = pb.build();
    SimMemory mem;
    Interpreter interp(p, mem);
    RunLimits limits;
    limits.maxInsts = 1000;
    const RunResult res = interp.run({}, {}, limits);
    EXPECT_TRUE(res.hitInstLimit);
    EXPECT_EQ(res.instsExecuted, 1000u);
}

// ---- Trace generation ----

TEST(TraceGen, AnnotatesLoadsAndBranches)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, 100, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        f.addTo(acc, acc, v);
    });
    f.ret(acc);
    const Program p = pb.build();
    SimMemory mem;
    Trace trace(&p);
    const TraceGenResult res =
        generateTrace(p, mem, {0x8000}, trace);
    EXPECT_FALSE(res.hitInstLimit);
    bool saw_load_lat = false;
    std::uint64_t branches = 0;
    for (const DynInst &di : trace.insts()) {
        if (opInfo(di.op).isLoad) {
            EXPECT_GE(di.memLat, 4u);
            saw_load_lat = true;
        }
        if (opInfo(di.op).isCondBranch)
            ++branches;
    }
    EXPECT_TRUE(saw_load_lat);
    EXPECT_EQ(branches, 100u);
}

TEST(TraceGen, LoopBranchMostlyWellPredicted)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 2000, 1,
                [&](RegId i) { f.addTo(acc, acc, i); });
    f.ret(acc);
    const Program p = pb.build();
    SimMemory mem;
    Trace trace(&p);
    generateTrace(p, mem, {}, trace);
    std::uint64_t mis = 0;
    std::uint64_t br = 0;
    for (const DynInst &di : trace.insts()) {
        if (opInfo(di.op).isCondBranch) {
            ++br;
            mis += di.mispredicted;
        }
    }
    EXPECT_GT(br, 0u);
    EXPECT_LT(static_cast<double>(mis) / static_cast<double>(br),
              0.05);
}

} // namespace
} // namespace prism
