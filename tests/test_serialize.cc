/**
 * @file
 * Tests for trace serialization: round trips, fingerprint checks,
 * and corruption handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/trace_gen.hh"
#include "trace/serialize.hh"
#include "trace/trace_cache.hh"
#include "workloads/kernel_util.hh"

namespace prism
{
namespace
{

Program
smallProgram(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        f.addTo(acc, acc, v);
    });
    f.ret(acc);
    return pb.build();
}

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

TEST(Serialize, RoundTripPreservesEveryField)
{
    const Program prog = smallProgram(200);
    SimMemory mem;
    Rng rng(5);
    fillI64(mem, 0x4000, 200, rng, -100, 100);
    Trace trace(&prog);
    generateTrace(prog, mem, {0x4000}, trace);

    TempFile tmp("roundtrip.trc");
    saveTrace(trace, tmp.path);
    EXPECT_TRUE(traceFileMatches(prog, tmp.path));

    const Trace loaded = loadTrace(prog, tmp.path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (DynId i = 0; i < trace.size(); ++i) {
        const DynInst &a = trace[i];
        const DynInst &b = loaded[i];
        ASSERT_EQ(a.sid, b.sid) << i;
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.memSize, b.memSize);
        ASSERT_EQ(a.branchTaken, b.branchTaken);
        ASSERT_EQ(a.mispredicted, b.mispredicted);
        ASSERT_EQ(a.memLat, b.memLat);
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.srcProd, b.srcProd);
        ASSERT_EQ(a.memProd, b.memProd);
        ASSERT_EQ(a.value, b.value);
    }
}

TEST(Serialize, FingerprintStableAndSensitive)
{
    const Program a = smallProgram(200);
    const Program b = smallProgram(200);
    EXPECT_EQ(programFingerprint(a), programFingerprint(b));
    const Program c = smallProgram(201); // different immediate
    EXPECT_NE(programFingerprint(a), programFingerprint(c));
}

TEST(Serialize, RejectsTraceFromDifferentProgram)
{
    const Program a = smallProgram(100);
    const Program b = smallProgram(101);
    SimMemory mem;
    Trace trace(&a);
    generateTrace(a, mem, {0x4000}, trace);
    TempFile tmp("mismatch.trc");
    saveTrace(trace, tmp.path);
    EXPECT_TRUE(traceFileMatches(a, tmp.path));
    EXPECT_FALSE(traceFileMatches(b, tmp.path));
}

TEST(Serialize, RejectsGarbageFile)
{
    const Program a = smallProgram(50);
    TempFile tmp("garbage.trc");
    std::ofstream os(tmp.path, std::ios::binary);
    os << "this is not a trace";
    os.close();
    EXPECT_FALSE(traceFileMatches(a, tmp.path));
}

TEST(Serialize, MissingFileDoesNotMatch)
{
    const Program a = smallProgram(50);
    EXPECT_FALSE(traceFileMatches(a, "/nonexistent/path.trc"));
}

// ---- Corruption handling ------------------------------------------

/** A program + saved trace file pair for corruption experiments. */
struct SavedTrace
{
    Program prog;
    Trace trace;
    TempFile file;

    explicit SavedTrace(const char *name)
        : prog(smallProgram(60)), trace(&prog), file(name)
    {
        SimMemory mem;
        Rng rng(7);
        fillI64(mem, 0x4000, 60, rng, -50, 50);
        generateTrace(prog, mem, {0x4000}, trace);
        saveTrace(trace, file.path);
    }
};

void
corruptByte(const std::string &path, std::streamoff off, char byte)
{
    std::fstream fs(path,
                    std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(fs) << path;
    fs.seekp(off);
    fs.write(&byte, 1);
}

TEST(Serialize, TruncatedHeaderRejectedWithClearError)
{
    SavedTrace st("trunc_header.trc");
    std::filesystem::resize_file(st.file.path, 20);

    std::string err;
    EXPECT_FALSE(tryLoadTrace(st.prog, st.file.path, &err));
    EXPECT_NE(err.find("truncated trace header"), std::string::npos)
        << err;
    EXPECT_FALSE(traceFileMatches(st.prog, st.file.path));
}

TEST(Serialize, TruncatedPayloadRejectedWithClearError)
{
    SavedTrace st("trunc_payload.trc");
    const auto full = std::filesystem::file_size(st.file.path);
    // Chop mid-record: drop the last record and a half.
    std::filesystem::resize_file(st.file.path, full - 96);

    std::string err;
    EXPECT_FALSE(tryLoadTrace(st.prog, st.file.path, &err));
    EXPECT_NE(err.find("header promises"), std::string::npos) << err;
    // The header itself is intact, so a header-only probe matches.
    EXPECT_TRUE(traceFileMatches(st.prog, st.file.path));
}

TEST(Serialize, BadMagicRejected)
{
    SavedTrace st("bad_magic.trc");
    corruptByte(st.file.path, 0, 'X');

    std::string err;
    EXPECT_FALSE(tryLoadTrace(st.prog, st.file.path, &err));
    EXPECT_NE(err.find("not a Prism trace"), std::string::npos)
        << err;
}

TEST(Serialize, UnsupportedVersionRejected)
{
    SavedTrace st("bad_version.trc");
    corruptByte(st.file.path, 8, 99); // version field, low byte

    std::string err;
    EXPECT_FALSE(tryLoadTrace(st.prog, st.file.path, &err));
    EXPECT_NE(err.find("unsupported trace format version"),
              std::string::npos)
        << err;
}

TEST(Serialize, TrailingBytesRejected)
{
    SavedTrace st("trailing.trc");
    {
        std::ofstream os(st.file.path,
                         std::ios::binary | std::ios::app);
        os << "junk";
    }
    std::string err;
    EXPECT_FALSE(tryLoadTrace(st.prog, st.file.path, &err));
    EXPECT_NE(err.find("trailing bytes"), std::string::npos) << err;
}

TEST(Serialize, SaveLeavesNoTempFile)
{
    SavedTrace st("no_tmp_leftover.trc");
    const auto dir =
        std::filesystem::path(st.file.path).parent_path();
    for (const auto &ent :
         std::filesystem::directory_iterator(dir)) {
        EXPECT_EQ(
            ent.path().filename().string().find(
                "no_tmp_leftover.trc.tmp"),
            std::string::npos)
            << "leftover temp file: " << ent.path();
    }
}

// ---- TraceCache ---------------------------------------------------

/** Fresh cache directory, removed on scope exit. */
struct TempCacheDir
{
    std::string path;
    explicit TempCacheDir(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::filesystem::remove_all(path);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path); }
};

TEST(TraceCache, MissThenStoreThenHit)
{
    TempCacheDir dir("prism_cache_hit");
    const ArtifactCache cache(dir.path);
    const Program prog = smallProgram(40);
    SimMemory mem;
    Trace trace(&prog);
    generateTrace(prog, mem, {0x4000}, trace);

    auto stats = [&] { return cache.stats(kTraceArtifactKind); };

    EXPECT_FALSE(loadCachedTrace(cache, "wl", prog, 0));
    EXPECT_EQ(stats().misses, 1u);
    EXPECT_EQ(stats().hits, 0u);

    storeCachedTrace(cache, "wl", prog, 0, trace);
    EXPECT_EQ(stats().stores, 1u);

    const auto hit = loadCachedTrace(cache, "wl", prog, 0);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->size(), trace.size());
    EXPECT_EQ(stats().hits, 1u);
    EXPECT_EQ(stats().misses, 1u);
    EXPECT_EQ(stats().rejected, 0u);
}

TEST(TraceCache, KeyDistinguishesBudgetAndProgram)
{
    TempCacheDir dir("prism_cache_key");
    const ArtifactCache cache(dir.path);
    const Program a = smallProgram(40);
    const Program b = smallProgram(41);
    auto path = [&](const char *name, const Program &prog,
                    std::uint64_t budget) {
        return cache.pathFor(kTraceArtifactKind, name,
                             traceArtifactKey(prog, budget));
    };
    EXPECT_NE(path("wl", a, 0), path("wl", a, 50));
    EXPECT_NE(path("wl", a, 0), path("wl", b, 0));
    EXPECT_NE(path("wl", a, 0), path("w2", a, 0));
}

TEST(TraceCache, CorruptEntryIsRejectedMiss)
{
    TempCacheDir dir("prism_cache_corrupt");
    const ArtifactCache cache(dir.path);
    const Program prog = smallProgram(40);
    SimMemory mem;
    Trace trace(&prog);
    generateTrace(prog, mem, {0x4000}, trace);
    storeCachedTrace(cache, "wl", prog, 0, trace);

    // Truncate the stored entry mid-payload.
    const std::string path = cache.pathFor(
        kTraceArtifactKind, "wl", traceArtifactKey(prog, 0));
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 32);

    auto stats = [&] { return cache.stats(kTraceArtifactKind); };
    EXPECT_FALSE(loadCachedTrace(cache, "wl", prog, 0));
    EXPECT_EQ(stats().rejected, 1u);
    EXPECT_EQ(stats().misses, 1u);

    // A fresh store repairs the entry.
    storeCachedTrace(cache, "wl", prog, 0, trace);
    EXPECT_TRUE(loadCachedTrace(cache, "wl", prog, 0));
    EXPECT_EQ(stats().hits, 1u);
}

} // namespace
} // namespace prism
