/**
 * @file
 * Tests for trace serialization: round trips, fingerprint checks,
 * and corruption handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/trace_gen.hh"
#include "trace/serialize.hh"
#include "workloads/kernel_util.hh"

namespace prism
{
namespace
{

Program
smallProgram(std::int64_t n)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        f.addTo(acc, acc, v);
    });
    f.ret(acc);
    return pb.build();
}

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

TEST(Serialize, RoundTripPreservesEveryField)
{
    const Program prog = smallProgram(200);
    SimMemory mem;
    Rng rng(5);
    fillI64(mem, 0x4000, 200, rng, -100, 100);
    Trace trace(&prog);
    generateTrace(prog, mem, {0x4000}, trace);

    TempFile tmp("roundtrip.trc");
    saveTrace(trace, tmp.path);
    EXPECT_TRUE(traceFileMatches(prog, tmp.path));

    const Trace loaded = loadTrace(prog, tmp.path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (DynId i = 0; i < trace.size(); ++i) {
        const DynInst &a = trace[i];
        const DynInst &b = loaded[i];
        ASSERT_EQ(a.sid, b.sid) << i;
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.memSize, b.memSize);
        ASSERT_EQ(a.branchTaken, b.branchTaken);
        ASSERT_EQ(a.mispredicted, b.mispredicted);
        ASSERT_EQ(a.memLat, b.memLat);
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.srcProd, b.srcProd);
        ASSERT_EQ(a.memProd, b.memProd);
        ASSERT_EQ(a.value, b.value);
    }
}

TEST(Serialize, FingerprintStableAndSensitive)
{
    const Program a = smallProgram(200);
    const Program b = smallProgram(200);
    EXPECT_EQ(programFingerprint(a), programFingerprint(b));
    const Program c = smallProgram(201); // different immediate
    EXPECT_NE(programFingerprint(a), programFingerprint(c));
}

TEST(Serialize, RejectsTraceFromDifferentProgram)
{
    const Program a = smallProgram(100);
    const Program b = smallProgram(101);
    SimMemory mem;
    Trace trace(&a);
    generateTrace(a, mem, {0x4000}, trace);
    TempFile tmp("mismatch.trc");
    saveTrace(trace, tmp.path);
    EXPECT_TRUE(traceFileMatches(a, tmp.path));
    EXPECT_FALSE(traceFileMatches(b, tmp.path));
}

TEST(Serialize, RejectsGarbageFile)
{
    const Program a = smallProgram(50);
    TempFile tmp("garbage.trc");
    std::ofstream os(tmp.path, std::ios::binary);
    os << "this is not a trace";
    os.close();
    EXPECT_FALSE(traceFileMatches(a, tmp.path));
}

TEST(Serialize, MissingFileDoesNotMatch)
{
    const Program a = smallProgram(50);
    EXPECT_FALSE(traceFileMatches(a, "/nonexistent/path.trc"));
}

} // namespace
} // namespace prism
