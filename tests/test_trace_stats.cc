/**
 * @file
 * Tests for trace statistics and the end-to-end record/replay flow:
 * a serialized trace reloaded from disk must drive the evaluation to
 * bit-identical results.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "tdg/exocore.hh"
#include "trace/serialize.hh"
#include "trace/trace_stats.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

TEST(TraceStats, CountsMatchManualTally)
{
    const auto lw =
        LoadedWorkload::load(findWorkload("branch-rand"), 50'000);
    const Trace &trace = lw->tdg().trace();
    const TraceStats st = computeStats(trace);
    EXPECT_EQ(st.numInsts, trace.size());

    std::uint64_t loads = 0;
    std::uint64_t branches = 0;
    for (const DynInst &di : trace.insts()) {
        loads += opInfo(di.op).isLoad;
        branches += opInfo(di.op).isCondBranch;
    }
    EXPECT_EQ(st.numLoads, loads);
    EXPECT_EQ(st.numBranches, branches);
    EXPECT_GT(st.numTaken, 0u);
    EXPECT_LE(st.numTaken, st.numBranches);
    EXPECT_LE(st.numMispredicted, st.numBranches);
    EXPECT_GT(st.mispredictRate(), 0.2); // random branch data
    EXPECT_GE(st.avgLoadLatency(), 4.0);
    EXPECT_FALSE(st.toString().empty());
    // Opcode tally sums to the instruction count.
    std::uint64_t total = 0;
    for (std::uint64_t c : st.opCounts)
        total += c;
    EXPECT_EQ(total, st.numInsts);
}

TEST(TraceStats, EmptyTrace)
{
    Program p;
    Function fn;
    fn.name = "main";
    BasicBlock bb;
    Instr ret;
    ret.op = Opcode::Ret;
    bb.instrs.push_back(ret);
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();
    const Trace trace(&p);
    const TraceStats st = computeStats(trace);
    EXPECT_EQ(st.numInsts, 0u);
    EXPECT_DOUBLE_EQ(st.mispredictRate(), 0.0);
    EXPECT_DOUBLE_EQ(st.branchFraction(), 0.0);
    EXPECT_DOUBLE_EQ(st.avgLoadLatency(), 0.0);
}

TEST(RecordReplay, ReloadedTraceEvaluatesIdentically)
{
    // Record a workload, persist its trace, reload, and verify the
    // full ExoCore evaluation is bit-identical — the paper's
    // "generate once, explore many configurations" workflow.
    const auto lw =
        LoadedWorkload::load(findWorkload("radar"), 120'000);
    const std::string path =
        std::string(::testing::TempDir()) + "radar.trc";
    saveTrace(lw->tdg().trace(), path);

    Trace reloaded = loadTrace(lw->program(), path);
    const Tdg tdg2(lw->program(), std::move(reloaded));

    const BenchmarkModel a(lw->tdg(), CoreKind::OOO2);
    const BenchmarkModel b(tdg2, CoreKind::OOO2);
    for (unsigned mask : {0u, 1u, kFullBsaMask}) {
        const ExoResult ra = a.evaluate(mask);
        const ExoResult rb = b.evaluate(mask);
        EXPECT_EQ(ra.cycles, rb.cycles) << mask;
        EXPECT_DOUBLE_EQ(ra.energy, rb.energy) << mask;
        EXPECT_EQ(ra.choices.size(), rb.choices.size());
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace prism
