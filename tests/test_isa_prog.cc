/**
 * @file
 * Unit tests for the guest ISA tables and the program builder /
 * verifier / disassembler.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "prog/builder.hh"
#include "prog/verifier.hh"

namespace prism
{
namespace
{

TEST(Isa, OpcodeTableBasics)
{
    EXPECT_EQ(opName(Opcode::Fadd), "fadd");
    EXPECT_TRUE(opInfo(Opcode::Ld).isLoad);
    EXPECT_TRUE(opInfo(Opcode::St).isStore);
    EXPECT_FALSE(opInfo(Opcode::St).writesDst);
    EXPECT_TRUE(opInfo(Opcode::Br).isCondBranch);
    EXPECT_FALSE(opInfo(Opcode::Jmp).isCondBranch);
    EXPECT_TRUE(opInfo(Opcode::Jmp).isBranch);
    EXPECT_TRUE(opInfo(Opcode::Call).isCall);
    EXPECT_TRUE(opInfo(Opcode::Ret).isRet);
    EXPECT_TRUE(opInfo(Opcode::Fma).isFp);
    EXPECT_EQ(opInfo(Opcode::Fma).numSrcs, 3);
}

TEST(Isa, EveryOpcodeHasANameAndFu)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_FALSE(opInfo(op).name.empty())
            << "opcode " << i << " unnamed";
    }
}

TEST(Isa, SyntheticOpcodesAreMarked)
{
    EXPECT_TRUE(opInfo(Opcode::Vadd).isSynthetic);
    EXPECT_TRUE(opInfo(Opcode::AccelCfg).isSynthetic);
    EXPECT_TRUE(opInfo(Opcode::CfuOp).isSynthetic);
    EXPECT_FALSE(opInfo(Opcode::Add).isSynthetic);
}

TEST(Isa, VectorFormsMapSensibly)
{
    EXPECT_EQ(vectorFormOf(Opcode::Fadd), Opcode::Vfadd);
    EXPECT_EQ(vectorFormOf(Opcode::Ld), Opcode::Vld);
    EXPECT_EQ(vectorFormOf(Opcode::St), Opcode::Vst);
    EXPECT_EQ(vectorFormOf(Opcode::Br), Opcode::Nop); // no form
    EXPECT_TRUE(opInfo(vectorFormOf(Opcode::Mul)).isVector);
}

TEST(Isa, FuPools)
{
    EXPECT_EQ(fuPoolOf(FuClass::IntAlu), FuPool::Alu);
    EXPECT_EQ(fuPoolOf(FuClass::Branch), FuPool::Alu);
    EXPECT_EQ(fuPoolOf(FuClass::IntMul), FuPool::MulDiv);
    EXPECT_EQ(fuPoolOf(FuClass::FpDiv), FuPool::Fp);
    EXPECT_EQ(fuPoolOf(FuClass::Mem), FuPool::MemPort);
}

Program
tinyLoopProgram()
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId base = f.arg(0);
    const RegId i = f.reg();
    f.moviTo(i, 0);
    const RegId n = f.movi(10);
    const RegId one = f.movi(1);
    const std::int32_t loop = f.newBlock();
    const std::int32_t done = f.newBlock();
    f.jmp(loop);
    f.setBlock(loop);
    const RegId v = f.ld(base, 0);
    f.st(base, 8, v);
    f.addTo(i, i, one);
    const RegId c = f.cmplt(i, n);
    f.br(c, loop, done);
    f.setBlock(done);
    f.ret(i);
    return pb.build();
}

TEST(Prog, BuilderProducesFinalizedVerifiedProgram)
{
    const Program p = tinyLoopProgram();
    EXPECT_TRUE(p.finalized());
    EXPECT_TRUE(check(p).empty());
    EXPECT_EQ(p.functions().size(), 1u);
    EXPECT_EQ(p.function(0).blocks.size(), 3u);
}

TEST(Prog, StaticIdsAreDenseAndLocatable)
{
    const Program p = tinyLoopProgram();
    for (StaticId s = 0; s < p.numInstrs(); ++s) {
        const Instr &in = p.instr(s);
        EXPECT_EQ(in.sid, s);
        const InstrRef &ref = p.locate(s);
        EXPECT_EQ(p.function(ref.func)
                      .blocks[ref.block]
                      .instrs[ref.index]
                      .sid,
                  s);
    }
}

TEST(Prog, BlockStartsAreMonotonic)
{
    const Program p = tinyLoopProgram();
    EXPECT_EQ(p.blockStart(0, 0), 0u);
    EXPECT_LT(p.blockStart(0, 0), p.blockStart(0, 1));
    EXPECT_LT(p.blockStart(0, 1), p.blockStart(0, 2));
}

TEST(Prog, DisassemblyMentionsOpcodesAndTargets)
{
    const Program p = tinyLoopProgram();
    const std::string d = p.disassemble();
    EXPECT_NE(d.find("cmplt"), std::string::npos);
    EXPECT_NE(d.find("->bb1"), std::string::npos);
    EXPECT_NE(d.find("main"), std::string::npos);
}

TEST(Prog, EntryFunctionPrefersMain)
{
    ProgramBuilder pb;
    auto &g = pb.func("helper", 0);
    g.retVoid();
    auto &f = pb.func("main", 0);
    f.retVoid();
    const Program p = pb.build();
    EXPECT_EQ(p.entryFunction(), 1);
}

TEST(Verifier, CatchesMissingTerminator)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.numRegs = 2;
    BasicBlock bb;
    Instr in;
    in.op = Opcode::Add;
    in.dst = 0;
    in.src = {1, 1, kNoReg};
    bb.instrs.push_back(in);
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();
    const auto errs = check(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_EQ(errs.front().check, "terminator");
    EXPECT_EQ(errs.front().func, 0);
    EXPECT_EQ(errs.front().block, 0);
}

TEST(Verifier, CatchesRegisterOutOfRange)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.numRegs = 1;
    BasicBlock bb;
    Instr in;
    in.op = Opcode::Add;
    in.dst = 0;
    in.src = {5, 0, kNoReg}; // r5 out of range
    bb.instrs.push_back(in);
    Instr ret;
    ret.op = Opcode::Ret;
    bb.instrs.push_back(ret);
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();
    EXPECT_FALSE(check(p).empty());
}

TEST(Verifier, CatchesSyntheticOpcodeInGuestCode)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.numRegs = 2;
    BasicBlock bb;
    Instr in;
    in.op = Opcode::Vadd;
    in.dst = 0;
    in.src = {1, 1, kNoReg};
    bb.instrs.push_back(in);
    Instr ret;
    ret.op = Opcode::Ret;
    bb.instrs.push_back(ret);
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();
    const auto errs = check(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_EQ(errs.front().check, "synthetic-op");
    EXPECT_EQ(errs.front().instr, 0);
}

TEST(Verifier, CatchesBadBranchTarget)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.numRegs = 1;
    BasicBlock bb;
    Instr br;
    br.op = Opcode::Br;
    br.src = {0, kNoReg, kNoReg};
    br.target = 7; // no such block
    bb.instrs.push_back(br);
    bb.fallthrough = 0;
    fn.blocks.push_back(bb);
    p.addFunction(fn);
    p.finalize();
    EXPECT_FALSE(check(p).empty());
}

TEST(Verifier, CatchesCallArgumentMismatch)
{
    Program p;
    {
        Function callee;
        callee.name = "two_args";
        callee.numArgs = 2;
        callee.numRegs = 2;
        BasicBlock bb;
        Instr ret;
        ret.op = Opcode::Ret;
        ret.src = {0, kNoReg, kNoReg};
        bb.instrs.push_back(ret);
        callee.blocks.push_back(bb);
        p.addFunction(callee);
    }
    {
        Function fn;
        fn.name = "main";
        fn.numRegs = 2;
        BasicBlock bb;
        Instr call;
        call.op = Opcode::Call;
        call.dst = 0;
        call.src = {1, kNoReg, kNoReg}; // one arg; callee wants two
        call.target = 0;
        bb.instrs.push_back(call);
        Instr ret;
        ret.op = Opcode::Ret;
        bb.instrs.push_back(ret);
        fn.blocks.push_back(bb);
        p.addFunction(fn);
    }
    p.finalize();
    const auto errs = check(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_EQ(errs.front().check, "call-args");
    EXPECT_NE(errs.front().message.find("argument"), std::string::npos);
}

} // namespace
} // namespace prism
