/**
 * @file
 * Differential tests for the fused streaming front end: the batched
 * interpret → annotate → TDG-construct pipeline must be functionally
 * indistinguishable from the legacy per-instruction sink and the
 * legacy four-pass TDG construction it replaced.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "ir/induction.hh"
#include "ir/loops.hh"
#include "ir/mem_profile.hh"
#include "ir/path_profile.hh"
#include "prog/builder.hh"
#include "sim/trace_gen.hh"
#include "tdg/builder.hh"
#include "tdg/constructor.hh"
#include "trace/trace_cache.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

constexpr std::uint64_t kTestInsts = 60'000;

bool
sameDynInst(const DynInst &a, const DynInst &b)
{
    return a.sid == b.sid && a.op == b.op && a.memSize == b.memSize &&
           a.branchTaken == b.branchTaken &&
           a.mispredicted == b.mispredicted && a.memLat == b.memLat &&
           a.effAddr == b.effAddr && a.srcProd == b.srcProd &&
           a.memProd == b.memProd && a.value == b.value;
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (DynId i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(sameDynInst(a[i], b[i]))
            << "trace divergence at dyn index " << i;
    }
}

/** One workload per suite class, mid-size, exercising all hooks. */
std::vector<const WorkloadSpec *>
classRepresentatives()
{
    std::vector<const WorkloadSpec *> reps;
    bool have[3] = {false, false, false};
    for (const WorkloadSpec &w : allWorkloads()) {
        const auto c = static_cast<std::size_t>(w.cls);
        if (!have[c]) {
            have[c] = true;
            reps.push_back(&w);
        }
    }
    return reps;
}

struct BuiltWorkload
{
    Program prog;
    SimMemory mem;
    std::vector<std::int64_t> args;
};

BuiltWorkload
buildWorkload(const WorkloadSpec &spec)
{
    BuiltWorkload bw;
    ProgramBuilder pb;
    spec.build(pb, bw.mem, bw.args);
    bw.prog = pb.build();
    return bw;
}

/**
 * The legacy front end: per-instruction std::function sink with
 * virtual-dispatch predictor and per-instruction annotation. Kept
 * here as the reference the batched FrontEnd must reproduce.
 */
Trace
legacyGenerate(const Program &prog, SimMemory &mem,
               const std::vector<std::int64_t> &args,
               const TraceGenConfig &cfg)
{
    Trace out(&prog);
    CacheHierarchy caches(cfg.hierarchy);
    const auto pred = makePredictor(cfg.predictor);
    Interpreter interp(prog, mem);
    RunLimits limits;
    limits.maxInsts = cfg.maxInsts;
    interp.run(
        args,
        [&](DynInst &di) {
            const OpInfo &oi = opInfo(di.op);
            if (oi.isLoad) {
                di.memLat =
                    static_cast<std::uint16_t>(caches.load(di.effAddr));
            } else if (oi.isStore) {
                caches.store(di.effAddr);
                di.memLat = 1;
            }
            if (oi.isCondBranch) {
                di.mispredicted =
                    !pred->predictAndUpdate(di.sid, di.branchTaken);
            }
            out.push(di);
        },
        limits);
    return out;
}

// ---- trace equivalence -------------------------------------------

TEST(FrontEndStreaming, BatchedTraceMatchesLegacySink)
{
    for (const WorkloadSpec *spec : classRepresentatives()) {
        SCOPED_TRACE(spec->name);
        TraceGenConfig cfg;
        cfg.maxInsts = kTestInsts;

        BuiltWorkload legacy = buildWorkload(*spec);
        const Trace ref =
            legacyGenerate(legacy.prog, legacy.mem, legacy.args, cfg);

        BuiltWorkload fused = buildWorkload(*spec);
        FrontEnd fe(fused.prog, fused.mem, cfg);
        Trace got(&fused.prog);
        fe.run(fused.args,
               [&](const DynInst *d, std::size_t n, DynId base) {
                   EXPECT_EQ(base, got.size());
                   got.append(d, n);
               });

        expectTracesEqual(ref, got);
    }
}

TEST(FrontEndStreaming, ReusedScratchRunsAreBitIdentical)
{
    const WorkloadSpec &spec = findWorkload("conv");
    TraceGenConfig cfg;
    cfg.maxInsts = kTestInsts;
    BuiltWorkload bw = buildWorkload(spec);
    FrontEnd fe(bw.prog, bw.mem, cfg);

    Trace first(&bw.prog);
    fe.run(bw.args, [&](const DynInst *d, std::size_t n, DynId) {
        first.append(d, n);
    });
    for (int rep = 0; rep < 2; ++rep) {
        Trace again(&bw.prog);
        fe.run(bw.args, [&](const DynInst *d, std::size_t n, DynId) {
            again.append(d, n);
        });
        expectTracesEqual(first, again);
    }
}

TEST(FrontEndStreaming, AllPredictorKindsMatchLegacy)
{
    const WorkloadSpec &spec = findWorkload("conv");
    for (const PredictorKind kind :
         {PredictorKind::Tournament, PredictorKind::Gshare,
          PredictorKind::Bimodal, PredictorKind::AlwaysTaken}) {
        TraceGenConfig cfg;
        cfg.maxInsts = kTestInsts;
        cfg.predictor = kind;

        BuiltWorkload legacy = buildWorkload(spec);
        const Trace ref =
            legacyGenerate(legacy.prog, legacy.mem, legacy.args, cfg);

        BuiltWorkload fused = buildWorkload(spec);
        Trace got(&fused.prog);
        generateTrace(fused.prog, fused.mem, fused.args, got, cfg);
        expectTracesEqual(ref, got);
    }
}

// ---- fused TDG profiles vs legacy passes -------------------------

void
expectProfilesMatchLegacy(const Tdg &tdg)
{
    const Program &prog = tdg.program();
    const Trace &trace = tdg.trace();

    const LoopForest forest = LoopForest::build(prog);
    const TraceLoopMap map = mapTraceToLoops(prog, trace, forest);
    const auto paths = profilePaths(prog, trace, forest, map);
    const auto mems = profileMemory(prog, trace, forest, map);
    const auto dfgs = buildAllDfgs(prog);
    const auto deps = profileDeps(prog, trace, forest, map, dfgs);

    ASSERT_EQ(tdg.loops().numLoops(), forest.numLoops());
    EXPECT_EQ(tdg.loopMap().loopOf, map.loopOf);
    EXPECT_EQ(tdg.loopMap().occOf, map.occOf);
    ASSERT_EQ(tdg.loopMap().occurrences.size(),
              map.occurrences.size());
    for (std::size_t i = 0; i < map.occurrences.size(); ++i) {
        const LoopOccurrence &a = tdg.loopMap().occurrences[i];
        const LoopOccurrence &b = map.occurrences[i];
        EXPECT_EQ(a.loopId, b.loopId) << "occurrence " << i;
        EXPECT_EQ(a.begin, b.begin) << "occurrence " << i;
        EXPECT_EQ(a.end, b.end) << "occurrence " << i;
        EXPECT_EQ(a.iterStarts, b.iterStarts) << "occurrence " << i;
    }

    for (const Loop &loop : forest.loops()) {
        SCOPED_TRACE("loop " + std::to_string(loop.id));
        const PathProfile &pa = tdg.pathProfile(loop.id);
        const PathProfile &pb = paths[loop.id];
        EXPECT_EQ(pa.loopId, pb.loopId);
        EXPECT_EQ(pa.totalIters, pb.totalIters);
        EXPECT_EQ(pa.backEdgeTaken, pb.backEdgeTaken);
        EXPECT_EQ(pa.numStaticPaths, pb.numStaticPaths);
        ASSERT_EQ(pa.paths.size(), pb.paths.size());
        for (std::size_t i = 0; i < pa.paths.size(); ++i) {
            EXPECT_EQ(pa.paths[i].id, pb.paths[i].id);
            EXPECT_EQ(pa.paths[i].count, pb.paths[i].count);
            EXPECT_EQ(pa.paths[i].blocks, pb.paths[i].blocks);
        }

        const LoopMemProfile &ma = tdg.memProfile(loop.id);
        const LoopMemProfile &mb = mems[loop.id];
        EXPECT_EQ(ma.loopId, mb.loopId);
        EXPECT_EQ(ma.itersObserved, mb.itersObserved);
        EXPECT_EQ(ma.loopCarriedStoreToLoad,
                  mb.loopCarriedStoreToLoad);
        // Access order differs by design (first-touch vs hash order);
        // compare as sets keyed by sid.
        auto sorted = [](std::vector<MemAccessPattern> v) {
            std::sort(v.begin(), v.end(),
                      [](const auto &x, const auto &y) {
                          return x.sid < y.sid;
                      });
            return v;
        };
        const auto sa = sorted(ma.accesses);
        const auto sb = sorted(mb.accesses);
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].sid, sb[i].sid);
            EXPECT_EQ(sa[i].isLoad, sb[i].isLoad);
            EXPECT_EQ(sa[i].memSize, sb[i].memSize);
            EXPECT_EQ(sa[i].count, sb[i].count);
            EXPECT_EQ(sa[i].strideKnown, sb[i].strideKnown);
            if (sa[i].strideKnown) {
                EXPECT_EQ(sa[i].stride, sb[i].stride);
            }
        }

        const LoopDepProfile &da = tdg.depProfile(loop.id);
        const LoopDepProfile &db = deps[loop.id];
        EXPECT_EQ(da.loopId, db.loopId);
        EXPECT_EQ(da.carriedDeps, db.carriedDeps);
        EXPECT_EQ(da.inductions, db.inductions);
        EXPECT_EQ(da.reductions, db.reductions);
        EXPECT_EQ(da.otherRecurrence, db.otherRecurrence);
    }
}

TEST(FusedTdg, ProfilesMatchLegacyPassesAcrossClasses)
{
    for (const WorkloadSpec *spec : classRepresentatives()) {
        SCOPED_TRACE(spec->name);
        const auto lw = LoadedWorkload::load(*spec, kTestInsts);
        expectProfilesMatchLegacy(lw->tdg());
    }
}

TEST(FusedTdg, MaterializedCtorMatchesLegacyPasses)
{
    // The Tdg(prog, trace) ctor also runs the fused builder; check it
    // against the legacy passes on a trace with calls in loops.
    const WorkloadSpec &spec = findWorkload("calls");
    TraceGenConfig cfg;
    cfg.maxInsts = kTestInsts;
    BuiltWorkload bw = buildWorkload(spec);
    Trace trace(&bw.prog);
    generateTrace(bw.prog, bw.mem, bw.args, trace, cfg);
    Trace copy(&bw.prog);
    copy.reserve(trace.size());
    for (const DynInst &di : trace.insts())
        copy.push(di);
    const Tdg tdg(bw.prog, std::move(copy));
    expectProfilesMatchLegacy(tdg);
}

// ---- streamed MStream construction -------------------------------

TEST(FrontEndStreaming, AppendCoreBatchMatchesBuildCoreStream)
{
    const WorkloadSpec &spec = findWorkload("conv");
    TraceGenConfig cfg;
    cfg.maxInsts = kTestInsts;
    BuiltWorkload bw = buildWorkload(spec);
    FrontEnd fe(bw.prog, bw.mem, cfg);

    Trace trace(&bw.prog);
    MStream streamed;
    fe.run(bw.args, [&](const DynInst *d, std::size_t n, DynId base) {
        trace.append(d, n);
        appendCoreBatch(d, n, base, streamed);
    });
    const MStream ref = buildCoreStream(trace);

    ASSERT_EQ(streamed.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(streamed[i].op, ref[i].op) << i;
        EXPECT_EQ(streamed[i].sid, ref[i].sid) << i;
        EXPECT_EQ(streamed[i].memLat, ref[i].memLat) << i;
        EXPECT_EQ(streamed[i].mispredicted, ref[i].mispredicted) << i;
        EXPECT_EQ(streamed[i].takenBranch, ref[i].takenBranch) << i;
        EXPECT_EQ(streamed[i].dep, ref[i].dep) << i;
        EXPECT_EQ(streamed[i].memDep, ref[i].memDep) << i;
    }

    const EventCounts ea = tallyEvents(streamed);
    const EventCounts eb = tallyEvents(ref);
    EXPECT_EQ(ea.loads, eb.loads);
    EXPECT_EQ(ea.stores, eb.stores);
    EXPECT_EQ(ea.branches, eb.branches);
    EXPECT_EQ(ea.mispredicts, eb.mispredicts);
    EXPECT_EQ(ea.coreCommits, eb.coreCommits);
}

// ---- trace-cache hit and miss paths ------------------------------

TEST(FusedTdg, CacheHitAndMissPathsAgree)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "prism_fe_cache_test")
            .string();
    std::filesystem::remove_all(dir);
    ArtifactCache::setGlobalDir(dir);

    const WorkloadSpec &spec = findWorkload("conv");
    const auto missed = LoadedWorkload::load(spec, kTestInsts);
    EXPECT_FALSE(missed->fromCache());
    EXPECT_FALSE(missed->profilesFromCache());
    const auto hit = LoadedWorkload::load(spec, kTestInsts);
    EXPECT_TRUE(hit->fromCache());
    EXPECT_TRUE(hit->profilesFromCache());

    ArtifactCache::setGlobalDir("");
    std::filesystem::remove_all(dir);

    expectTracesEqual(missed->tdg().trace(), hit->tdg().trace());
    expectProfilesMatchLegacy(missed->tdg());
    expectProfilesMatchLegacy(hit->tdg());
}

// ---- load sign extension -----------------------------------------

TEST(FrontEndStreaming, LoadSignExtensionAllSizes)
{
    for (const unsigned size : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("size " + std::to_string(size));
        ProgramBuilder pb;
        auto &f = pb.func("main", 1);
        const RegId neg = f.movi(-5);
        f.st(f.arg(0), 0, neg, static_cast<std::uint8_t>(size));
        const RegId back =
            f.ld(f.arg(0), 0, static_cast<std::uint8_t>(size));
        const RegId pos = f.movi(113);
        f.st(f.arg(0), 16, pos, static_cast<std::uint8_t>(size));
        const RegId back2 =
            f.ld(f.arg(0), 16, static_cast<std::uint8_t>(size));
        f.ret(f.add(back, back2));
        const Program p = pb.build();

        SimMemory mem;
        FrontEnd fe(p, mem);
        const TraceGenResult res = fe.run(
            {0x1000}, [](const DynInst *, std::size_t, DynId) {});
        EXPECT_EQ(res.returnValue, -5 + 113);
    }
}

} // namespace
} // namespace prism
