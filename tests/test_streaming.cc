/**
 * @file
 * Windowed-streaming equivalence tests: feeding the µDG timing engine
 * and the discrete-event reference simulator window-by-window must be
 * cycle-identical to whole-stream runs, for any window partition —
 * the correctness contract of the allocation-free streaming core.
 */

#include <gtest/gtest.h>

#include "tdg/bsa/bsa.hh"
#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "tdg/transform.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

/** One representative per workload class, plus a SPEC-like mix. */
const char *const kWorkloads[] = {
    "conv", "mm", "ilp-chain", "mem-stream",
    "branch-rand", "fp-mix", "calls",
};

const std::size_t kWindows[] = {1, 7, 10000};

const CoreKind kCores[] = {CoreKind::IO2, CoreKind::OOO2};

const Tdg &
load(const char *name)
{
    static std::unordered_map<std::string,
                              std::unique_ptr<LoadedWorkload>>
        cache;
    auto &slot = cache[name];
    if (!slot)
        slot = LoadedWorkload::load(findWorkload(name));
    return slot->tdg();
}

TEST(Streaming, PipelineWindowedMatchesFull)
{
    for (const char *wl : kWorkloads) {
        const MStream stream = buildCoreStream(load(wl).trace());
        for (CoreKind core : kCores) {
            PipelineConfig cfg;
            cfg.core = coreConfig(core);
            const PipelineModel model(cfg);

            TimingScratch full_ts;
            const PipelineResult full =
                model.run(stream, full_ts, true);

            for (std::size_t w : kWindows) {
                TimingScratch ts;
                model.beginRun(ts, true);
                for (std::size_t b = 0; b < stream.size(); b += w) {
                    const std::size_t e =
                        std::min(b + w, stream.size());
                    model.runWindow(ts, stream, b, e, false);
                }
                const PipelineResult res = model.finish(ts);
                ASSERT_EQ(res.cycles, full.cycles)
                    << wl << " core=" << static_cast<int>(core)
                    << " window=" << w;
                EXPECT_TRUE(res.events == full.events) << wl;
                EXPECT_TRUE(res.binding == full.binding) << wl;
                ASSERT_EQ(res.commitAt, full.commitAt) << wl;
                ASSERT_EQ(res.completeAt, full.completeAt) << wl;
            }
        }
    }
}

TEST(Streaming, PipelineTraceWindowsMatchMaterializedStream)
{
    // The baseline-evaluation path: windows built straight from the
    // trace with absolute producer indices, no whole-trace stream.
    for (const char *wl : kWorkloads) {
        const Trace &trace = load(wl).trace();
        const MStream stream = buildCoreStream(trace);
        PipelineConfig cfg;
        cfg.core = coreConfig(CoreKind::OOO2);
        const PipelineModel model(cfg);

        TimingScratch full_ts;
        const PipelineResult full = model.run(stream, full_ts, true);

        for (std::size_t w : kWindows) {
            TimingScratch ts;
            model.beginRun(ts, true);
            MStream win;
            for (DynId b = 0; b < trace.size();
                 b += static_cast<DynId>(w)) {
                const DynId e = std::min<DynId>(
                    b + static_cast<DynId>(w), trace.size());
                win.clear();
                appendCoreWindow(trace, b, e, win);
                model.runWindow(ts, win, 0, win.size(), false);
            }
            const PipelineResult res = model.finish(ts);
            ASSERT_EQ(res.cycles, full.cycles)
                << wl << " window=" << w;
            EXPECT_TRUE(res.events == full.events) << wl;
            ASSERT_EQ(res.commitAt, full.commitAt) << wl;
        }
    }
}

TEST(Streaming, ReferenceSimWindowedMatchesFull)
{
    for (const char *wl : kWorkloads) {
        const MStream stream = buildCoreStream(load(wl).trace());
        for (CoreKind core : kCores) {
            const CycleCoreSim sim(coreConfig(core));
            RefSimScratch full_ss;
            const Cycle full = sim.run(stream, full_ss);

            for (std::size_t w : kWindows) {
                RefSimScratch ss;
                sim.begin(ss);
                for (std::size_t b = 0; b < stream.size(); b += w) {
                    const std::size_t e =
                        std::min(b + w, stream.size());
                    sim.feed(ss, stream, b, e);
                }
                ASSERT_EQ(sim.finishRun(ss, stream), full)
                    << wl << " core=" << static_cast<int>(core)
                    << " window=" << w;
            }
        }
    }
}

TEST(Streaming, BsaOccurrenceWindowsMatchMaterializedStream)
{
    // The BSA-evaluation path: transform + time one occurrence at a
    // time through the scratch window (window-local dependences) and
    // compare against materializing the whole rewritten stream.
    for (const char *wl : {"conv", "mm", "fp-mix"}) {
        const Tdg &tdg = load(wl);
        const TdgAnalyzer an(tdg);
        PipelineConfig cfg;
        cfg.core = coreConfig(CoreKind::OOO2);
        const PipelineModel model(cfg);

        for (BsaKind kind : kAllBsas) {
            auto whole = makeTransform(kind, tdg, an);
            auto streamed = makeTransform(kind, tdg, an);
            for (const Loop &loop : tdg.loops().loops()) {
                if (!whole->canTarget(loop.id))
                    continue;
                const auto occs = tdg.occurrencesOf(loop.id);
                if (occs.empty())
                    continue;

                const TransformOutput out =
                    whole->transformLoop(loop.id, occs);
                TimingScratch full_ts;
                const PipelineResult full =
                    model.run(out.stream, full_ts, true);

                streamed->beginLoop(loop.id);
                TimingScratch ts;
                model.beginRun(ts, true);
                for (const LoopOccurrence *occ : occs) {
                    ts.window.clear();
                    streamed->transformOccurrence(*occ, ts.window);
                    model.runWindow(ts, ts.window, 0,
                                    ts.window.size(), true);
                }
                const PipelineResult res = model.finish(ts);
                ASSERT_EQ(res.cycles, full.cycles)
                    << wl << " bsa=" << static_cast<int>(kind)
                    << " loop=" << loop.id;
                EXPECT_TRUE(res.events == full.events) << wl;
                EXPECT_TRUE(res.binding == full.binding) << wl;
                ASSERT_EQ(res.commitAt, full.commitAt) << wl;
            }
        }
    }
}

TEST(Streaming, RepeatedRunsReuseScratch)
{
    // Re-arming a scratch must fully reset carried state: two
    // identical runs through one scratch give identical results.
    const MStream stream = buildCoreStream(load("conv").trace());
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const PipelineModel model(cfg);
    TimingScratch ts;
    const PipelineResult first = model.run(stream, ts, true);
    const PipelineResult second = model.run(stream, ts, true);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_TRUE(first.events == second.events);
    EXPECT_EQ(first.commitAt, second.commitAt);

    const CycleCoreSim sim(coreConfig(CoreKind::OOO2));
    RefSimScratch ss;
    const Cycle c1 = sim.run(stream, ss);
    const Cycle c2 = sim.run(stream, ss);
    EXPECT_EQ(c1, c2);
}

} // namespace
} // namespace prism
