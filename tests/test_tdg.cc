/**
 * @file
 * Tests for the TDG framework: stream construction, the fma example
 * transform, per-BSA analysis plans and transforms on crafted loops,
 * and structural validity of every transform's output.
 */

#include <gtest/gtest.h>

#include "sim/trace_gen.hh"
#include "tdg/analyzer.hh"
#include "tdg/bsa/bsa.hh"
#include "tdg/constructor.hh"
#include "tdg/exocore.hh"
#include "tdg/transform.hh"
#include "uarch/pipeline_model.hh"
#include "workloads/kernel_util.hh"

namespace prism
{
namespace
{

/** Trace a freshly built program. */
Tdg
makeTdg(Program &prog, SimMemory &mem,
        const std::vector<std::int64_t> &args)
{
    Trace trace(&prog);
    generateTrace(prog, mem, args, trace);
    return Tdg(prog, std::move(trace));
}

/** Clean streaming FP loop: out[i] = (a[i]*b[i] + c) * a[i] - c. */
Program
vectorizableLoop(std::int64_t n = 512)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 3);
    const RegId eight = f.movi(8);
    const RegId c = f.fmovi(0.5);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId x = f.ld(f.add(f.arg(0), off), 0);
        const RegId y = f.ld(f.add(f.arg(1), off), 0);
        const RegId v = f.fma(x, y, c);
        const RegId w = f.fsub(f.fmul(v, x), c);
        f.st(f.add(f.arg(2), off), 0, w);
    });
    f.retVoid();
    return pb.build();
}

struct VecSetup
{
    Program prog;
    SimMemory mem;
    std::vector<std::int64_t> args;

    explicit VecSetup(std::int64_t n = 512) : prog(vectorizableLoop(n))
    {
        Rng rng(77);
        fillF64(mem, 0x10000, n, rng);
        fillF64(mem, 0x40000, n, rng);
        args = {0x10000, 0x40000, 0x80000};
    }
};

// ---- Construction ----

TEST(Constructor, DependencesRemapWithinRange)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const MStream full = buildCoreStream(tdg.trace());
    EXPECT_EQ(full.size(), tdg.trace().size());
    EXPECT_TRUE(checkStream(full).empty());

    // A sub-range drops dependences on producers outside it.
    const MStream sub = buildCoreStream(tdg.trace(), 100, 200);
    EXPECT_EQ(sub.size(), 100u);
    EXPECT_TRUE(checkStream(sub).empty());
}

TEST(Constructor, RangesConcatenateWithBoundaries)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    std::vector<std::size_t> bounds;
    const MStream joined = buildCoreStreamRanges(
        tdg.trace(), {{0, 50}, {100, 150}}, bounds);
    ASSERT_EQ(bounds.size(), 2u);
    EXPECT_EQ(bounds[0], 0u);
    EXPECT_EQ(bounds[1], 50u);
    EXPECT_TRUE(joined[0].startRegion);
    EXPECT_TRUE(joined[50].startRegion);
    EXPECT_TRUE(checkStream(joined).empty());
}

TEST(Constructor, TallyMatchesModelEvents)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const MStream stream = buildCoreStream(tdg.trace());
    const EventCounts tallied = tallyEvents(stream);
    const PipelineResult res = PipelineModel({}).run(stream);
    EXPECT_EQ(tallied.coreFetches, res.events.coreFetches);
    EXPECT_EQ(tallied.loads, res.events.loads);
    EXPECT_EQ(tallied.stores, res.events.stores);
    EXPECT_EQ(tallied.branches, res.events.branches);
    EXPECT_EQ(tallied.mispredicts, res.events.mispredicts);
    EXPECT_EQ(tallied.l2Accesses, res.events.l2Accesses);
}

// ---- fma example ----

TEST(FmaExample, PlansSingleUseFmulFaddPairs)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, 64, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId x = f.ld(f.add(f.arg(0), off), 0);
        const RegId m = f.fmul(x, x);   // single use
        const RegId a = f.fadd(m, x);   // fusable
        f.st(f.add(f.arg(0), off), 0, a);
    });
    f.retVoid();
    Program prog = pb.build();
    SimMemory mem;
    Rng rng(3);
    fillF64(mem, 0x4000, 64, rng);
    const Tdg tdg = makeTdg(prog, mem, {0x4000});

    const FmaTransform fma(tdg);
    EXPECT_EQ(fma.plannedPairs(), 1u);

    const MStream fused = fma.transform();
    EXPECT_TRUE(checkStream(fused).empty());
    // One fadd elided per iteration.
    EXPECT_EQ(fused.size(), tdg.trace().size() - 64);
    // The fma opcode appears with latency 4.
    bool saw_fma = false;
    for (const MInst &mi : fused) {
        if (mi.op == Opcode::Fma) {
            saw_fma = true;
            EXPECT_EQ(mi.lat, 4);
        }
        EXPECT_NE(mi.op, Opcode::Fadd); // all fused away
    }
    EXPECT_TRUE(saw_fma);
}

TEST(FmaExample, MultiUseFmulNotFused)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 0);
    const RegId x = f.fmovi(1.5);
    const RegId m = f.fmul(x, x);
    const RegId a = f.fadd(m, x);
    const RegId b = f.fadd(m, a); // second use of m
    f.ret(f.cvtfi(b));
    Program prog = pb.build();
    SimMemory mem;
    const Tdg tdg = makeTdg(prog, mem, {});
    const FmaTransform fma(tdg);
    EXPECT_EQ(fma.plannedPairs(), 0u);
}

// ---- Analyzer ----

TEST(Analyzer, AcceptsCleanVectorizableLoop)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    ASSERT_EQ(tdg.loops().numLoops(), 1u);
    const SimdPlan &plan = an.simd(0);
    EXPECT_TRUE(plan.legal) << plan.reason;
    EXPECT_TRUE(plan.profitable) << plan.reason;
    EXPECT_TRUE(plan.usable());
    EXPECT_FALSE(plan.bodyRpo.empty());
    EXPECT_GT(plan.avgIterInsts, 0.0);
}

TEST(Analyzer, RejectsCarriedMemoryDependence)
{
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, 128, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId p = f.add(f.arg(0), off);
        const RegId v = f.ld(p, 0);
        f.st(p, 8, f.addi(v, 1)); // feeds next iteration's load
    });
    f.retVoid();
    Program prog = pb.build();
    SimMemory mem;
    const Tdg tdg = makeTdg(prog, mem, {0x4000});
    const TdgAnalyzer an(tdg);
    EXPECT_FALSE(an.simd(0).usable());
    EXPECT_NE(an.simd(0).reason.find("memory"), std::string::npos);
    EXPECT_FALSE(an.cgra(0).usable());
}

TEST(Analyzer, RejectsShortTripCounts)
{
    VecSetup s(3); // fewer iterations than the vector length
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    EXPECT_FALSE(an.simd(0).usable());
    EXPECT_NE(an.simd(0).reason.find("trip"), std::string::npos);
}

TEST(Analyzer, NsdfSizeLimit)
{
    // A loop with > 256 static instructions is rejected.
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 16, 1, [&](RegId i) {
        for (int k = 0; k < 300; ++k)
            f.addTo(acc, acc, i);
    });
    f.ret(acc);
    Program prog = pb.build();
    SimMemory mem;
    const Tdg tdg = makeTdg(prog, mem, {0});
    const TdgAnalyzer an(tdg);
    EXPECT_FALSE(an.nsdf(0).usable());
    EXPECT_GT(an.nsdf(0).staticInsts, 256u);
}

TEST(Analyzer, TracepRequiresBiasedControl)
{
    // 50/50 data-dependent branch: no hot path.
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 400, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        ifElse(
            f, v, [&]() { f.addTo(acc, acc, v); },
            [&]() { f.addTo(acc, acc, eight); });
    });
    f.ret(acc);
    Program prog = pb.build();
    SimMemory mem;
    Rng rng(13);
    fillI64(mem, 0x4000, 400, rng, 0, 1);
    const Tdg tdg = makeTdg(prog, mem, {0x4000});
    const TdgAnalyzer an(tdg);
    EXPECT_FALSE(an.tracep(0).usable());
    EXPECT_TRUE(an.nsdf(0).usable()); // NS-DF takes it instead
}

TEST(Analyzer, TracepAcceptsHotPath)
{
    // Branch taken ~97% of the time: a clear hot trace.
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 400, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        ifElse(f, v, [&]() { f.addTo(acc, acc, v); });
    });
    f.ret(acc);
    Program prog = pb.build();
    SimMemory mem;
    for (int i = 0; i < 400; ++i)
        mem.writeI64(0x4000 + i * 8, i % 32 != 0);
    const Tdg tdg = makeTdg(prog, mem, {0x4000});
    const TdgAnalyzer an(tdg);
    const TracepPlan &plan = an.tracep(0);
    EXPECT_TRUE(plan.usable()) << plan.reason;
    EXPECT_GT(plan.hotFraction, 0.9);
    EXPECT_FALSE(plan.hotBlocks.empty());
    EXPECT_TRUE(plan.onHotPath(plan.hotBlocks.front()));
}

TEST(Analyzer, CgraSlicesSeparableLoop)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    const CgraPlan &plan = an.cgra(0);
    ASSERT_TRUE(plan.usable()) << plan.reason;
    EXPECT_GE(plan.computeSlice.size(), 1u); // the fma
    EXPECT_GE(plan.sendCount, 1u);           // loads feed the fabric
    EXPECT_GE(plan.recvCount, 1u);           // result returns
    // The fma's sid must be in the compute slice.
    bool fma_in_compute = false;
    for (StaticId sid : plan.computeSlice) {
        if (tdg.program().instr(sid).op == Opcode::Fma)
            fma_in_compute = true;
    }
    EXPECT_TRUE(fma_in_compute);
}

// ---- Transforms: validity and effect ----

class TransformValidity : public ::testing::TestWithParam<BsaKind>
{
};

TEST_P(TransformValidity, OutputStreamsAreWellFormed)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    auto tf = makeTransform(GetParam(), tdg, an);
    for (const Loop &loop : tdg.loops().loops()) {
        if (!tf->canTarget(loop.id))
            continue;
        const auto occs = tdg.occurrencesOf(loop.id);
        const TransformOutput out = tf->transformLoop(loop.id, occs);
        const auto errs = checkStream(out.stream);
        EXPECT_TRUE(errs.empty())
            << bsaName(GetParam()) << ": " << errs.front();
        EXPECT_EQ(out.occBoundaries.size(), occs.size());
    }
}

INSTANTIATE_TEST_SUITE_P(AllBsas, TransformValidity,
                         ::testing::Values(BsaKind::Simd,
                                           BsaKind::DpCgra,
                                           BsaKind::Nsdf,
                                           BsaKind::Tracep));

TEST(SimdTransform, ShrinksAndSpeedsUpCleanLoop)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    SimdTransform tf(tdg, an);
    ASSERT_TRUE(tf.canTarget(0));
    const auto occs = tdg.occurrencesOf(0);
    const TransformOutput out = tf.transformLoop(0, occs);

    const MStream base = buildCoreStream(
        tdg.trace(), occs[0]->begin, occs[0]->end);
    // Vectorization removes ~3/4 of the dynamic instructions.
    EXPECT_LT(out.stream.size(), base.size() / 2);

    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO4);
    const Cycle c_base = PipelineModel(cfg).run(base).cycles;
    const Cycle c_simd = PipelineModel(cfg).run(out.stream).cycles;
    EXPECT_LT(static_cast<double>(c_simd),
              0.7 * static_cast<double>(c_base));
}

TEST(SimdTransform, EmitsVectorOpcodes)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    SimdTransform tf(tdg, an);
    const TransformOutput out =
        tf.transformLoop(0, tdg.occurrencesOf(0));
    std::uint64_t vls = 0;
    std::uint64_t vfma = 0;
    for (const MInst &mi : out.stream) {
        vls += mi.op == Opcode::Vld;
        vfma += mi.op == Opcode::Vfma;
    }
    EXPECT_GT(vls, 0u);
    EXPECT_GT(vfma, 0u);
}

TEST(NsdfTransform, EmitsDataflowWithSwitchesAndCfus)
{
    // A loop with internal control for NS-DF to serialize.
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 200, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        ifElse(f, v, [&]() { f.addTo(acc, acc, v); });
    });
    f.ret(acc);
    Program prog = pb.build();
    SimMemory mem;
    Rng rng(17);
    fillI64(mem, 0x4000, 200, rng, 0, 1);
    const Tdg tdg = makeTdg(prog, mem, {0x4000});
    const TdgAnalyzer an(tdg);
    NsdfTransform tf(tdg, an);
    ASSERT_TRUE(tf.canTarget(0));
    const TransformOutput out =
        tf.transformLoop(0, tdg.occurrencesOf(0));
    EXPECT_TRUE(checkStream(out.stream).empty());
    std::uint64_t switches = 0;
    std::uint64_t cfus = 0;
    std::uint64_t cfgs = 0;
    for (const MInst &mi : out.stream) {
        switches += mi.op == Opcode::DfSwitch;
        cfus += mi.op == Opcode::CfuOp;
        cfgs += mi.op == Opcode::AccelCfg;
    }
    EXPECT_GT(switches, 200u); // >=1 per iteration (two branches)
    EXPECT_GT(cfus, 0u);
    EXPECT_EQ(cfgs, 1u); // configured once, cached afterwards
}

TEST(TracepTransform, ReplaysDivergingIterationsOnCore)
{
    // ~94% biased branch: hot path speculation with a few replays.
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 320, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(f.arg(0), f.mul(i, eight)), 0);
        ifElse(f, v, [&]() { f.addTo(acc, acc, v); });
    });
    f.ret(acc);
    Program prog = pb.build();
    SimMemory mem;
    for (int i = 0; i < 320; ++i)
        mem.writeI64(0x4000 + i * 8, i % 16 != 0);
    const Tdg tdg = makeTdg(prog, mem, {0x4000});
    const TdgAnalyzer an(tdg);
    TracepTransform tf(tdg, an);
    ASSERT_TRUE(tf.canTarget(0)) << an.tracep(0).reason;
    const TransformOutput out =
        tf.transformLoop(0, tdg.occurrencesOf(0));
    EXPECT_TRUE(checkStream(out.stream).empty());
    std::uint64_t engine_ops = 0;
    std::uint64_t core_ops = 0;
    for (const MInst &mi : out.stream) {
        if (mi.unit == ExecUnit::Tracep)
            ++engine_ops;
        else
            ++core_ops;
    }
    EXPECT_GT(engine_ops, core_ops); // mostly speculated
    EXPECT_GT(core_ops, 20u);        // but replays exist
}

TEST(DpCgraTransform, CommunicatesAcrossInterface)
{
    VecSetup s;
    const Tdg tdg = makeTdg(s.prog, s.mem, s.args);
    const TdgAnalyzer an(tdg);
    DpCgraTransform tf(tdg, an);
    ASSERT_TRUE(tf.canTarget(0)) << an.cgra(0).reason;
    const TransformOutput out =
        tf.transformLoop(0, tdg.occurrencesOf(0));
    EXPECT_TRUE(checkStream(out.stream).empty());
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t cgra_ops = 0;
    for (const MInst &mi : out.stream) {
        sends += mi.op == Opcode::AccelSend;
        recvs += mi.op == Opcode::AccelRecv;
        cgra_ops += mi.unit == ExecUnit::Cgra;
    }
    EXPECT_GT(sends, 0u);
    EXPECT_GT(recvs, 0u);
    EXPECT_GT(cgra_ops, 0u);
}

TEST(DpCgraTransform, ConfigCacheAvoidsReconfiguration)
{
    // Two occurrences of the same loop: config inserted only once.
    ProgramBuilder pb;
    auto &f = pb.func("main", 1);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, 2, 1, [&](RegId) {
        countedLoop(f, 0, 64, 1, [&](RegId i) {
            const RegId off = f.mul(i, eight);
            const RegId x = f.ld(f.add(f.arg(0), off), 0);
            const RegId v = f.fma(x, x, x);
            f.st(f.add(f.arg(0), off), 0, f.fmul(v, x));
        });
    });
    f.retVoid();
    Program prog = pb.build();
    SimMemory mem;
    Rng rng(19);
    fillF64(mem, 0x4000, 64, rng);
    const Tdg tdg = makeTdg(prog, mem, {0x4000});
    const TdgAnalyzer an(tdg);

    std::int32_t inner = -1;
    for (const Loop &loop : tdg.loops().loops()) {
        if (loop.innermost)
            inner = loop.id;
    }
    ASSERT_NE(inner, -1);
    DpCgraTransform tf(tdg, an);
    if (!tf.canTarget(inner))
        GTEST_SKIP() << an.cgra(inner).reason;
    const auto occs = tdg.occurrencesOf(inner);
    EXPECT_EQ(occs.size(), 2u);
    const TransformOutput out = tf.transformLoop(inner, occs);
    std::uint64_t cfgs = 0;
    for (const MInst &mi : out.stream)
        cfgs += mi.op == Opcode::AccelCfg;
    EXPECT_EQ(cfgs, 1u);
}

} // namespace
} // namespace prism
