/**
 * @file
 * Tests for ExoCore composition and the schedulers: baseline
 * consistency, BSA-mask monotonicity properties, attribution
 * invariants, timelines, and the oracle's slowdown guarantee.
 */

#include <gtest/gtest.h>

#include "tdg/exocore.hh"
#include "tdg/scheduler.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

/** Cache loaded workloads across tests (loading is the slow part). */
const LoadedWorkload &
workload(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<LoadedWorkload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          LoadedWorkload::load(findWorkload(name)))
                 .first;
    }
    return *it->second;
}

const BenchmarkModel &
model(const std::string &name, CoreKind core)
{
    static std::map<std::pair<std::string, CoreKind>,
                    std::unique_ptr<BenchmarkModel>>
        cache;
    const auto key = std::make_pair(name, core);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_unique<BenchmarkModel>(
                                   workload(name).tdg(), core))
                 .first;
    }
    return *it->second;
}

TEST(ExoCore, UnitNamesAndIndices)
{
    EXPECT_STREQ(unitName(0), "GPP");
    EXPECT_EQ(unitIndex(BsaKind::Simd), 1);
    EXPECT_EQ(unitIndex(BsaKind::Tracep), 4);
    EXPECT_EQ(bsaBit(BsaKind::Simd), 1u);
    EXPECT_EQ(bsaBit(BsaKind::Tracep), 8u);
}

TEST(ExoCore, EmptyMaskEqualsBaseline)
{
    const BenchmarkModel &bm = model("conv", CoreKind::OOO2);
    const ExoResult none = bm.evaluate(0);
    EXPECT_EQ(none.cycles, bm.baseline().cycles);
    EXPECT_DOUBLE_EQ(none.energy, bm.baseline().energy);
    EXPECT_TRUE(none.choices.empty());
}

TEST(ExoCore, FullMaskNeverWorseThanSingleBsa)
{
    const BenchmarkModel &bm = model("mm", CoreKind::OOO2);
    const ExoResult full = bm.evaluate(kFullBsaMask);
    for (unsigned bit = 0; bit < 4; ++bit) {
        const ExoResult one = bm.evaluate(1u << bit);
        const double edp_full = static_cast<double>(full.cycles) *
                                full.energy;
        const double edp_one =
            static_cast<double>(one.cycles) * one.energy;
        EXPECT_LE(edp_full, edp_one * 1.0001);
    }
}

TEST(ExoCore, OracleRespectsSlowdownAllowance)
{
    for (const char *name : {"conv", "mm", "181.mcf", "cjpeg-1"}) {
        const BenchmarkModel &bm = model(name, CoreKind::OOO2);
        const ExoResult full = bm.evaluate(kFullBsaMask);
        // The oracle allows <=10% per-region slowdown; program-level
        // slowdown is therefore also bounded by ~10%.
        EXPECT_LE(static_cast<double>(full.cycles),
                  1.10 * static_cast<double>(bm.baseline().cycles))
            << name;
        // Energy-delay never regresses.
        EXPECT_LE(static_cast<double>(full.cycles) * full.energy,
                  static_cast<double>(bm.baseline().cycles) *
                      bm.baseline().energy * 1.0001)
            << name;
    }
}

TEST(ExoCore, UnitAttributionSumsToTotal)
{
    const BenchmarkModel &bm = model("cjpeg-1", CoreKind::OOO2);
    const ExoResult full = bm.evaluate(kFullBsaMask);
    Cycle sum = 0;
    for (int u = 0; u < kNumUnits; ++u)
        sum += full.unitCycles[u];
    EXPECT_EQ(sum, full.cycles);
    double frac = 0;
    for (int u = 0; u < kNumUnits; ++u)
        frac += full.unitCycleFraction(u);
    EXPECT_NEAR(frac, 1.0, 1e-9);
}

TEST(ExoCore, ChoicesOnlyUseAttachedBsas)
{
    const BenchmarkModel &bm = model("cjpeg-1", CoreKind::OOO2);
    const unsigned mask = bsaBit(BsaKind::Simd); // SIMD only
    const ExoResult res = bm.evaluate(mask);
    for (const ExoChoice &c : res.choices)
        EXPECT_EQ(c.unit, unitIndex(BsaKind::Simd));
}

TEST(ExoCore, ChoicesAreNonOverlappingInLoopTree)
{
    const BenchmarkModel &bm = model("mm", CoreKind::OOO2);
    const Tdg &tdg = workload("mm").tdg();
    const ExoResult res = bm.evaluate(kFullBsaMask);
    for (std::size_t i = 0; i < res.choices.size(); ++i) {
        for (std::size_t j = 0; j < res.choices.size(); ++j) {
            if (i == j)
                continue;
            EXPECT_FALSE(tdg.loops().nestedIn(res.choices[i].loopId,
                                              res.choices[j].loopId))
                << "overlapping region choices";
        }
    }
}

TEST(ExoCore, RegularWorkloadAccelerates)
{
    const BenchmarkModel &bm = model("conv", CoreKind::OOO2);
    const ExoResult full = bm.evaluate(kFullBsaMask);
    const double speedup = static_cast<double>(bm.baseline().cycles) /
                           static_cast<double>(full.cycles);
    const double eff = bm.baseline().energy / full.energy;
    EXPECT_GT(speedup, 1.5);
    EXPECT_GT(eff, 1.5);
    // Nearly everything offloaded (paper: ~16% mean unaccelerated).
    EXPECT_LT(full.unitCycleFraction(0), 0.2);
}

TEST(ExoCore, MultiPhaseWorkloadUsesMultipleBsas)
{
    // Mediabench kernels need several BSAs in one application
    // (paper Figure 13/15).
    const BenchmarkModel &bm = model("cjpeg-1", CoreKind::OOO2);
    const ExoResult full = bm.evaluate(kFullBsaMask);
    std::set<int> units;
    for (const ExoChoice &c : full.choices)
        units.insert(c.unit);
    EXPECT_GE(units.size(), 2u);
}

TEST(ExoCore, TimelineCoversChosenRegions)
{
    const BenchmarkModel &bm = model("conv", CoreKind::OOO2);
    const auto points = bm.timeline(kFullBsaMask);
    ASSERT_FALSE(points.empty());
    Cycle prev = 0;
    for (const TimelinePoint &tp : points) {
        EXPECT_GE(tp.baseStart, prev);
        prev = tp.baseStart;
        EXPECT_GT(tp.baseCycles, 0u);
        EXPECT_GT(tp.exoCycles, 0u);
        EXPECT_GE(tp.unit, 1);
        EXPECT_LT(tp.unit, kNumUnits);
    }
}

TEST(Scheduler, AmdahlEstimatesArePositiveForUsablePlans)
{
    const BenchmarkModel &bm = model("conv", CoreKind::OOO2);
    const Tdg &tdg = workload("conv").tdg();
    for (const Loop &loop : tdg.loops().loops()) {
        for (BsaKind b : kAllBsas) {
            const double est =
                amdahlSpeedupEstimate(bm, tdg, loop.id, b);
            if (bm.analyzer().usable(b, loop.id))
                EXPECT_GT(est, 0.0);
            else
                EXPECT_EQ(est, 0.0);
        }
    }
    for (BsaKind b : kAllBsas) {
        EXPECT_GT(amdahlEnergyEstimate(b), 0.0);
        EXPECT_LT(amdahlEnergyEstimate(b), 1.0);
    }
}

TEST(Scheduler, AmdahlTreeBiasedTowardEnergy)
{
    // Paper Figure 15: the Amdahl scheduler over-selects BSAs,
    // giving at least as much (usually more) energy efficiency at
    // somewhat lower performance than the oracle, and never a
    // substantially worse energy result.
    double oracle_e = 1.0;
    double amdahl_e = 1.0;
    for (const char *name : {"cjpeg-1", "gsmencode", "mpeg2enc"}) {
        const BenchmarkModel &bm = model(name, CoreKind::OOO2);
        const ExoResult o =
            bm.evaluate(kFullBsaMask, SchedulerKind::Oracle);
        const ExoResult a =
            bm.evaluate(kFullBsaMask, SchedulerKind::AmdahlTree);
        oracle_e *= bm.baseline().energy / o.energy;
        amdahl_e *= bm.baseline().energy / a.energy;
        // The practical scheduler stays within 2x of oracle EDP.
        EXPECT_LE(static_cast<double>(a.cycles) * a.energy,
                  2.0 * static_cast<double>(o.cycles) * o.energy)
            << name;
    }
    EXPECT_GT(amdahl_e, 1.0);
    (void)oracle_e;
}

TEST(ExoCore, CoreSweepBaselinesOrdered)
{
    Cycle prev = ~Cycle{0};
    for (CoreKind k : {CoreKind::OOO2, CoreKind::OOO4,
                       CoreKind::OOO6}) {
        const BenchmarkModel &bm = model("mm", k);
        EXPECT_LT(bm.baseline().cycles, prev);
        prev = bm.baseline().cycles;
    }
}

} // namespace
} // namespace prism
