/**
 * @file
 * Property-based tests: randomized-but-deterministic sweeps checking
 * invariants of the memory, cache, resource, and timing models that
 * must hold for *any* input, not just the crafted cases.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "sim/cache.hh"
#include "sim/memory.hh"
#include "tdg/reference/ref_models.hh"
#include "uarch/pipeline_model.hh"
#include "uarch/resource_table.hh"

namespace prism
{
namespace
{

// ---- SimMemory vs a std::map reference model ----

TEST(Property, MemoryMatchesMapModel)
{
    Rng rng(42);
    SimMemory mem;
    std::map<Addr, std::uint8_t> model;
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(1 << 20);
        const unsigned size = 1u << rng.below(4); // 1/2/4/8
        if (rng.chance(0.5)) {
            const std::uint64_t v = rng.next();
            mem.write(addr, v, size);
            for (unsigned b = 0; b < size; ++b) {
                model[addr + b] =
                    static_cast<std::uint8_t>(v >> (8 * b));
            }
        } else {
            const std::uint64_t got = mem.read(addr, size);
            std::uint64_t want = 0;
            for (unsigned b = 0; b < size; ++b) {
                const auto it = model.find(addr + b);
                const std::uint8_t byte =
                    it == model.end() ? 0 : it->second;
                want |= static_cast<std::uint64_t>(byte) << (8 * b);
            }
            ASSERT_EQ(got, want) << "addr " << addr;
        }
    }
}

// ---- Cache invariants across geometries ----

struct CacheGeom
{
    std::uint64_t size;
    unsigned assoc;
    unsigned line;
};

class CacheSweep : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheSweep, HitRateWithinBoundsAndRepeatableWorkingSet)
{
    const CacheGeom g = GetParam();
    Cache c({g.size, g.assoc, g.line, 4});
    Rng rng(7);
    // Random accesses within 4x the cache size.
    for (int i = 0; i < 30000; ++i)
        c.access(rng.below(4 * g.size));
    EXPECT_EQ(c.hits() + c.misses(), 30000u);
    // A working set of half the cache always fits afterwards.
    Cache c2({g.size, g.assoc, g.line, 4});
    for (int round = 0; round < 3; ++round) {
        for (Addr a = 0; a < g.size / 2; a += g.line)
            c2.access(a);
    }
    EXPECT_EQ(c2.misses(), g.size / 2 / g.line);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheGeom{4096, 1, 64},
                      CacheGeom{8192, 2, 64},
                      CacheGeom{32768, 4, 64},
                      CacheGeom{65536, 2, 32},
                      CacheGeom{262144, 8, 64}));

// ---- ResourceTable never over-grants a cycle ----

TEST(Property, ResourceTableRespectsCapacity)
{
    for (unsigned cap : {1u, 2u, 3u, 6u}) {
        ResourceTable rt(cap);
        Rng rng(cap);
        std::map<Cycle, unsigned> granted;
        Cycle base = 0;
        for (int i = 0; i < 5000; ++i) {
            base += rng.below(3);
            const Cycle got = rt.acquire(base);
            EXPECT_GE(got, base);
            ++granted[got];
        }
        for (const auto &[cycle, count] : granted)
            EXPECT_LE(count, cap) << "cycle " << cycle;
    }
}

// ---- Random stream generator for timing-model properties ----

MStream
randomStream(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    MStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        MInst mi;
        const int kind = static_cast<int>(rng.below(10));
        if (kind < 5) {
            mi = MInst::core(Opcode::Add);
        } else if (kind < 6) {
            mi = MInst::core(Opcode::Fmul);
        } else if (kind < 8) {
            mi = MInst::core(Opcode::Ld);
            mi.memLat = static_cast<std::uint16_t>(
                rng.chance(0.1) ? 4 + rng.below(120) : 4);
        } else if (kind < 9) {
            mi = MInst::core(Opcode::St);
        } else {
            mi = MInst::core(Opcode::Br);
            mi.mispredicted = rng.chance(0.1);
            mi.takenBranch = rng.chance(0.5);
        }
        // Backward dependences only.
        if (i > 0 && rng.chance(0.6)) {
            mi.dep[0] = static_cast<std::int64_t>(
                i - 1 - rng.below(std::min<std::size_t>(i, 24)));
        }
        s.push_back(std::move(mi));
    }
    return s;
}

class RandomStreams : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomStreams, TimingInvariants)
{
    const MStream s = randomStream(GetParam(), 4000);
    ASSERT_TRUE(checkStream(s).empty());
    for (CoreKind k : {CoreKind::IO2, CoreKind::OOO2,
                       CoreKind::OOO6}) {
        PipelineConfig cfg;
        cfg.core = coreConfig(k);
        const PipelineResult res =
            PipelineModel(cfg).run(s, true);
        // Lower bound: width; upper bound: fully serial worst case.
        EXPECT_GE(res.cycles, s.size() / cfg.core.width);
        EXPECT_LE(res.cycles, s.size() * 200);
        // Commit times are monotone and complete <= commit.
        for (std::size_t i = 0; i < s.size(); ++i) {
            EXPECT_LE(res.completeAt[i], res.commitAt[i]);
            if (i > 0) {
                EXPECT_GE(res.commitAt[i], res.commitAt[i - 1]);
            }
        }
    }
}

TEST_P(RandomStreams, ModelsAgreeWithinBound)
{
    const MStream s = randomStream(GetParam() ^ 0xABCD, 3000);
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO4);
    const Cycle proj = PipelineModel(cfg).run(s).cycles;
    const Cycle ref = CycleCoreSim(cfg).run(s);
    const double err = std::abs(
        static_cast<double>(proj) / static_cast<double>(ref) - 1.0);
    EXPECT_LT(err, 0.25) << proj << " vs " << ref;
}

TEST_P(RandomStreams, MoreMispredictsNeverFaster)
{
    MStream s = randomStream(GetParam() ^ 0x77, 3000);
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const Cycle base = PipelineModel(cfg).run(s).cycles;
    for (MInst &mi : s) {
        if (mi.isCondBranch)
            mi.mispredicted = true;
    }
    const Cycle worse = PipelineModel(cfg).run(s).cycles;
    EXPECT_GE(worse, base);
}

TEST_P(RandomStreams, HigherMemLatencyNeverFaster)
{
    MStream s = randomStream(GetParam() ^ 0x99, 3000);
    PipelineConfig cfg;
    cfg.core = coreConfig(CoreKind::OOO2);
    const Cycle base = PipelineModel(cfg).run(s).cycles;
    for (MInst &mi : s) {
        if (mi.isLoad)
            mi.memLat += 20;
    }
    const Cycle worse = PipelineModel(cfg).run(s).cycles;
    EXPECT_GE(worse, base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStreams,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u,
                                           7u, 8u));

} // namespace
} // namespace prism
