# Empty dependencies file for bench_fig14_dynamic_switching.
# This may be replaced when dependencies are built.
