file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_dynamic_switching.dir/bench_fig14_dynamic_switching.cc.o"
  "CMakeFiles/bench_fig14_dynamic_switching.dir/bench_fig14_dynamic_switching.cc.o.d"
  "bench_fig14_dynamic_switching"
  "bench_fig14_dynamic_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dynamic_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
