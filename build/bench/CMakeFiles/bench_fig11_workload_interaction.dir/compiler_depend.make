# Empty compiler generated dependencies file for bench_fig11_workload_interaction.
# This may be replaced when dependencies are built.
