# Empty compiler generated dependencies file for bench_fig10_tradeoffs.
# This may be replaced when dependencies are built.
