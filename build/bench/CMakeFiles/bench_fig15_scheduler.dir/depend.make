# Empty dependencies file for bench_fig15_scheduler.
# This may be replaced when dependencies are built.
