file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_scheduler.dir/bench_fig15_scheduler.cc.o"
  "CMakeFiles/bench_fig15_scheduler.dir/bench_fig15_scheduler.cc.o.d"
  "bench_fig15_scheduler"
  "bench_fig15_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
