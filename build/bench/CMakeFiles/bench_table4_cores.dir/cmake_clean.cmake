file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cores.dir/bench_table4_cores.cc.o"
  "CMakeFiles/bench_table4_cores.dir/bench_table4_cores.cc.o.d"
  "bench_table4_cores"
  "bench_table4_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
