# Empty dependencies file for bench_framework_micro.
# This may be replaced when dependencies are built.
