file(REMOVE_RECURSE
  "CMakeFiles/bench_framework_micro.dir/bench_framework_micro.cc.o"
  "CMakeFiles/bench_framework_micro.dir/bench_framework_micro.cc.o.d"
  "bench_framework_micro"
  "bench_framework_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_framework_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
