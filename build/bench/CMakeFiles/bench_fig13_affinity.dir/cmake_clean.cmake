file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_affinity.dir/bench_fig13_affinity.cc.o"
  "CMakeFiles/bench_fig13_affinity.dir/bench_fig13_affinity.cc.o.d"
  "bench_fig13_affinity"
  "bench_fig13_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
