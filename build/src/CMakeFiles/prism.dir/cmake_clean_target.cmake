file(REMOVE_RECURSE
  "libprism.a"
)
