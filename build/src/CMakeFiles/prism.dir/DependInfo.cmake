
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/prism.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/prism.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/prism.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/prism.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/prism.dir/common/table.cc.o" "gcc" "src/CMakeFiles/prism.dir/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/prism.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/prism.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/energy/area_model.cc" "src/CMakeFiles/prism.dir/energy/area_model.cc.o" "gcc" "src/CMakeFiles/prism.dir/energy/area_model.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/prism.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/prism.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/energy/sram_model.cc" "src/CMakeFiles/prism.dir/energy/sram_model.cc.o" "gcc" "src/CMakeFiles/prism.dir/energy/sram_model.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/CMakeFiles/prism.dir/ir/cfg.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/cfg.cc.o.d"
  "/root/repo/src/ir/dfg.cc" "src/CMakeFiles/prism.dir/ir/dfg.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/dfg.cc.o.d"
  "/root/repo/src/ir/dominators.cc" "src/CMakeFiles/prism.dir/ir/dominators.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/dominators.cc.o.d"
  "/root/repo/src/ir/induction.cc" "src/CMakeFiles/prism.dir/ir/induction.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/induction.cc.o.d"
  "/root/repo/src/ir/loops.cc" "src/CMakeFiles/prism.dir/ir/loops.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/loops.cc.o.d"
  "/root/repo/src/ir/mem_profile.cc" "src/CMakeFiles/prism.dir/ir/mem_profile.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/mem_profile.cc.o.d"
  "/root/repo/src/ir/path_profile.cc" "src/CMakeFiles/prism.dir/ir/path_profile.cc.o" "gcc" "src/CMakeFiles/prism.dir/ir/path_profile.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/prism.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/prism.dir/isa/isa.cc.o.d"
  "/root/repo/src/prog/builder.cc" "src/CMakeFiles/prism.dir/prog/builder.cc.o" "gcc" "src/CMakeFiles/prism.dir/prog/builder.cc.o.d"
  "/root/repo/src/prog/program.cc" "src/CMakeFiles/prism.dir/prog/program.cc.o" "gcc" "src/CMakeFiles/prism.dir/prog/program.cc.o.d"
  "/root/repo/src/prog/verifier.cc" "src/CMakeFiles/prism.dir/prog/verifier.cc.o" "gcc" "src/CMakeFiles/prism.dir/prog/verifier.cc.o.d"
  "/root/repo/src/sim/branch_pred.cc" "src/CMakeFiles/prism.dir/sim/branch_pred.cc.o" "gcc" "src/CMakeFiles/prism.dir/sim/branch_pred.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/prism.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/prism.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/interpreter.cc" "src/CMakeFiles/prism.dir/sim/interpreter.cc.o" "gcc" "src/CMakeFiles/prism.dir/sim/interpreter.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/prism.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/prism.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/trace_gen.cc" "src/CMakeFiles/prism.dir/sim/trace_gen.cc.o" "gcc" "src/CMakeFiles/prism.dir/sim/trace_gen.cc.o.d"
  "/root/repo/src/tdg/amdahl_tree.cc" "src/CMakeFiles/prism.dir/tdg/amdahl_tree.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/amdahl_tree.cc.o.d"
  "/root/repo/src/tdg/analyzer.cc" "src/CMakeFiles/prism.dir/tdg/analyzer.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/analyzer.cc.o.d"
  "/root/repo/src/tdg/bsa/dpcgra.cc" "src/CMakeFiles/prism.dir/tdg/bsa/dpcgra.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/bsa/dpcgra.cc.o.d"
  "/root/repo/src/tdg/bsa/fma.cc" "src/CMakeFiles/prism.dir/tdg/bsa/fma.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/bsa/fma.cc.o.d"
  "/root/repo/src/tdg/bsa/nsdf.cc" "src/CMakeFiles/prism.dir/tdg/bsa/nsdf.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/bsa/nsdf.cc.o.d"
  "/root/repo/src/tdg/bsa/simd.cc" "src/CMakeFiles/prism.dir/tdg/bsa/simd.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/bsa/simd.cc.o.d"
  "/root/repo/src/tdg/bsa/tracep.cc" "src/CMakeFiles/prism.dir/tdg/bsa/tracep.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/bsa/tracep.cc.o.d"
  "/root/repo/src/tdg/constructor.cc" "src/CMakeFiles/prism.dir/tdg/constructor.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/constructor.cc.o.d"
  "/root/repo/src/tdg/exocore.cc" "src/CMakeFiles/prism.dir/tdg/exocore.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/exocore.cc.o.d"
  "/root/repo/src/tdg/reference/ref_models.cc" "src/CMakeFiles/prism.dir/tdg/reference/ref_models.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/reference/ref_models.cc.o.d"
  "/root/repo/src/tdg/scheduler.cc" "src/CMakeFiles/prism.dir/tdg/scheduler.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/scheduler.cc.o.d"
  "/root/repo/src/tdg/tdg.cc" "src/CMakeFiles/prism.dir/tdg/tdg.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/tdg.cc.o.d"
  "/root/repo/src/tdg/transform.cc" "src/CMakeFiles/prism.dir/tdg/transform.cc.o" "gcc" "src/CMakeFiles/prism.dir/tdg/transform.cc.o.d"
  "/root/repo/src/trace/dyn_inst.cc" "src/CMakeFiles/prism.dir/trace/dyn_inst.cc.o" "gcc" "src/CMakeFiles/prism.dir/trace/dyn_inst.cc.o.d"
  "/root/repo/src/trace/serialize.cc" "src/CMakeFiles/prism.dir/trace/serialize.cc.o" "gcc" "src/CMakeFiles/prism.dir/trace/serialize.cc.o.d"
  "/root/repo/src/trace/trace_cache.cc" "src/CMakeFiles/prism.dir/trace/trace_cache.cc.o" "gcc" "src/CMakeFiles/prism.dir/trace/trace_cache.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/CMakeFiles/prism.dir/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/prism.dir/trace/trace_stats.cc.o.d"
  "/root/repo/src/uarch/core_config.cc" "src/CMakeFiles/prism.dir/uarch/core_config.cc.o" "gcc" "src/CMakeFiles/prism.dir/uarch/core_config.cc.o.d"
  "/root/repo/src/uarch/pipeline_model.cc" "src/CMakeFiles/prism.dir/uarch/pipeline_model.cc.o" "gcc" "src/CMakeFiles/prism.dir/uarch/pipeline_model.cc.o.d"
  "/root/repo/src/uarch/resource_table.cc" "src/CMakeFiles/prism.dir/uarch/resource_table.cc.o" "gcc" "src/CMakeFiles/prism.dir/uarch/resource_table.cc.o.d"
  "/root/repo/src/uarch/udg.cc" "src/CMakeFiles/prism.dir/uarch/udg.cc.o" "gcc" "src/CMakeFiles/prism.dir/uarch/udg.cc.o.d"
  "/root/repo/src/workloads/kernel_util.cc" "src/CMakeFiles/prism.dir/workloads/kernel_util.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/kernel_util.cc.o.d"
  "/root/repo/src/workloads/mediabench.cc" "src/CMakeFiles/prism.dir/workloads/mediabench.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/mediabench.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/CMakeFiles/prism.dir/workloads/microbench.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/microbench.cc.o.d"
  "/root/repo/src/workloads/parboil.cc" "src/CMakeFiles/prism.dir/workloads/parboil.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/parboil.cc.o.d"
  "/root/repo/src/workloads/specfp.cc" "src/CMakeFiles/prism.dir/workloads/specfp.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/specfp.cc.o.d"
  "/root/repo/src/workloads/specint.cc" "src/CMakeFiles/prism.dir/workloads/specint.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/specint.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/prism.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/suite.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/CMakeFiles/prism.dir/workloads/tpch.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/tpch.cc.o.d"
  "/root/repo/src/workloads/tpt.cc" "src/CMakeFiles/prism.dir/workloads/tpt.cc.o" "gcc" "src/CMakeFiles/prism.dir/workloads/tpt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
