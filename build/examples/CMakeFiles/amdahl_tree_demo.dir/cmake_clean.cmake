file(REMOVE_RECURSE
  "CMakeFiles/amdahl_tree_demo.dir/amdahl_tree_demo.cc.o"
  "CMakeFiles/amdahl_tree_demo.dir/amdahl_tree_demo.cc.o.d"
  "amdahl_tree_demo"
  "amdahl_tree_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_tree_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
