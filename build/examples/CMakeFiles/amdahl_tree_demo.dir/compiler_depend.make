# Empty compiler generated dependencies file for amdahl_tree_demo.
# This may be replaced when dependencies are built.
