file(REMOVE_RECURSE
  "CMakeFiles/custom_bsa.dir/custom_bsa.cc.o"
  "CMakeFiles/custom_bsa.dir/custom_bsa.cc.o.d"
  "custom_bsa"
  "custom_bsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_bsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
