# Empty dependencies file for custom_bsa.
# This may be replaced when dependencies are built.
