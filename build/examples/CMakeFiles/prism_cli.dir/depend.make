# Empty dependencies file for prism_cli.
# This may be replaced when dependencies are built.
