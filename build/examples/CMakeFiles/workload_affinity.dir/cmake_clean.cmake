file(REMOVE_RECURSE
  "CMakeFiles/workload_affinity.dir/workload_affinity.cc.o"
  "CMakeFiles/workload_affinity.dir/workload_affinity.cc.o.d"
  "workload_affinity"
  "workload_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
