# Empty dependencies file for workload_affinity.
# This may be replaced when dependencies are built.
