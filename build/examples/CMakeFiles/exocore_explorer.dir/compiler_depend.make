# Empty compiler generated dependencies file for exocore_explorer.
# This may be replaced when dependencies are built.
