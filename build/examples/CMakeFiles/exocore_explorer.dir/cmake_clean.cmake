file(REMOVE_RECURSE
  "CMakeFiles/exocore_explorer.dir/exocore_explorer.cc.o"
  "CMakeFiles/exocore_explorer.dir/exocore_explorer.cc.o.d"
  "exocore_explorer"
  "exocore_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exocore_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
