# Empty dependencies file for test_tdg.
# This may be replaced when dependencies are built.
