file(REMOVE_RECURSE
  "CMakeFiles/test_tdg.dir/test_tdg.cc.o"
  "CMakeFiles/test_tdg.dir/test_tdg.cc.o.d"
  "test_tdg"
  "test_tdg.pdb"
  "test_tdg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
