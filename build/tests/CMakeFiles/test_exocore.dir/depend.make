# Empty dependencies file for test_exocore.
# This may be replaced when dependencies are built.
