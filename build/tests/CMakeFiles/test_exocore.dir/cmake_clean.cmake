file(REMOVE_RECURSE
  "CMakeFiles/test_exocore.dir/test_exocore.cc.o"
  "CMakeFiles/test_exocore.dir/test_exocore.cc.o.d"
  "test_exocore"
  "test_exocore.pdb"
  "test_exocore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exocore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
