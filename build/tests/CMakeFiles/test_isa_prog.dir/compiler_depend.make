# Empty compiler generated dependencies file for test_isa_prog.
# This may be replaced when dependencies are built.
