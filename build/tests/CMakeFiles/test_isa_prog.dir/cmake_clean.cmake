file(REMOVE_RECURSE
  "CMakeFiles/test_isa_prog.dir/test_isa_prog.cc.o"
  "CMakeFiles/test_isa_prog.dir/test_isa_prog.cc.o.d"
  "test_isa_prog"
  "test_isa_prog.pdb"
  "test_isa_prog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
