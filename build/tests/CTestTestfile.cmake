# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa_prog[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_tdg[1]_include.cmake")
include("/root/repo/build/tests/test_exocore[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_reference[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_trace_stats[1]_include.cmake")
